"""Dominance kernels: scalar and vectorised, with exact test accounting.

Definition 3.1 of the paper (minimisation convention): ``p`` dominates ``q``
when ``p[i] <= q[i]`` in every dimension and ``p[k] < q[k]`` in at least one.

Pure-Python pairwise loops are the bottleneck of any skyline reproduction in
Python, so this module also provides *block* kernels: one candidate point is
compared against a contiguous block of points in a single numpy expression.
The test count charged to the :class:`~repro.stats.counters.DominanceCounter`
is exactly what a sequential early-exit loop would pay — ``index of the first
dominator + 1``, or the block length when no row dominates — so the mean
dominance test numbers reported by the harness are identical to a scalar
implementation while running at numpy speed.
"""

from __future__ import annotations

import numpy as np

from repro.stats.counters import DominanceCounter
from repro.structures import bitset

__all__ = [
    "dominates",
    "weakly_dominates",
    "incomparable",
    "dominating_subspace",
    "dominating_subspaces",
    "first_dominator",
    "first_dominator_prefix",
    "dominance_mask",
]


def dominates(p: np.ndarray, q: np.ndarray, counter: DominanceCounter | None = None) -> bool:
    """True when ``p`` dominates ``q`` (Definition 3.1, minimisation).

    >>> import numpy as np
    >>> dominates(np.array([1.0, 2.0]), np.array([1.0, 3.0]))
    True
    >>> dominates(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
    False
    """
    if counter is not None:
        counter.add()
    return bool(np.all(p <= q) and np.any(p < q))


def weakly_dominates(
    p: np.ndarray, q: np.ndarray, counter: DominanceCounter | None = None
) -> bool:
    """True when ``p[i] <= q[i]`` in every dimension (``p`` ≼ ``q``)."""
    if counter is not None:
        counter.add()
    return bool(np.all(p <= q))


def incomparable(p: np.ndarray, q: np.ndarray, counter: DominanceCounter | None = None) -> bool:
    """True when neither point dominates the other (``p ~/~ q``)."""
    if counter is not None:
        counter.add(2)
    return not dominates(p, q) and not dominates(q, p)


def dominating_subspace(
    q: np.ndarray, p: np.ndarray, counter: DominanceCounter | None = None
) -> int:
    """Dominating subspace ``D_{q<p}`` of ``q`` w.r.t. ``p`` as a bitmask.

    Definition 3.4: the set of dimensions where ``q`` is strictly better
    than ``p``.  An empty result means ``p`` weakly dominates ``q`` (or they
    are equal); a full mask means ``q`` dominates ``p``.  Computing it
    inspects one point pair, so one dominance test is charged.
    """
    if counter is not None:
        counter.add()
    strict = np.asarray(q) < np.asarray(p)
    return bitset.from_dims(int(dim) for dim in np.nonzero(strict)[0])


def dominating_subspaces(
    block: np.ndarray, p: np.ndarray, counter: DominanceCounter | None = None
) -> np.ndarray:
    """``D_{q<p}`` bitmasks for every row ``q`` of ``block`` (vectorised).

    Charges one dominance test per row, matching the scalar loop the Merge
    algorithm (Algorithm 1, line 12) would otherwise run.  Returns an
    ``int64`` array; valid for ``d <= 62``.
    """
    block = np.asarray(block)
    if counter is not None:
        counter.add(block.shape[0])
    weights = np.left_shift(np.int64(1), np.arange(block.shape[1], dtype=np.int64))
    return (block < p).astype(np.int64) @ weights


def dominance_mask(block: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Boolean array: which rows of ``block`` dominate ``q`` (no accounting)."""
    block = np.asarray(block)
    le = np.all(block <= q, axis=1)
    eq = np.all(block == q, axis=1)
    return le & ~eq


#: First-chunk size of the early-exit scan in :func:`first_dominator`.
#: Candidate blocks are served strongest-dominators-first (insertion order
#: of a presorted scan), so most testing points find their dominator within
#: the first few hundred rows; evaluating the whole block wastes a full
#: ``O(k·d)`` comparison pass on them.  Chunks grow geometrically so the
#: undominated (skyline) points — which must inspect every row anyway —
#: pay only ``O(log k)`` extra kernel launches.
_EXIT_CHUNK = 256


def first_dominator(
    block: np.ndarray, q: np.ndarray, counter: DominanceCounter | None = None
) -> int:
    """Index of the first row of ``block`` that dominates ``q``, or ``-1``.

    Charges exactly the tests a sequential early-exit scan would: the first
    dominator's index + 1, or ``len(block)`` when nothing dominates.

    The scan is evaluated in geometrically growing chunks (see
    ``_EXIT_CHUNK``): dominated points stop at the chunk containing their
    first dominator, and the equality check — which only distinguishes a
    dominator from a duplicate — runs on the weakly dominating rows of one
    chunk instead of the whole block.  The returned index and the charged
    test count are bit-identical to the single-pass evaluation.
    """
    block = np.asarray(block)
    n = block.shape[0]
    if n == 0:
        return -1
    start, width = 0, _EXIT_CHUNK
    while start < n:
        chunk = block[start : start + width]
        # ndarray methods, not np.* wrappers: this runs once per chunk on
        # the hottest path in the library, and the dispatch overhead of
        # the functional forms is measurable at that call rate.
        le = (chunk <= q).all(axis=1)
        if le.any():
            weak = le.nonzero()[0]
            strict = (chunk[weak] != q).any(axis=1)
            if strict.any():
                idx = start + int(weak[int(strict.argmax())])
                if counter is not None:
                    counter.add(idx + 1)
                return idx
        start += width
        width *= 2
    if counter is not None:
        counter.add(n)
    return -1


def first_dominator_prefix(
    block: np.ndarray,
    col: np.ndarray,
    bound: float,
    q: np.ndarray,
    counter: DominanceCounter | None = None,
) -> int:
    """:func:`first_dominator` over the rows of ``block`` with ``col <= bound``.

    ``block`` must be sorted ascending by ``col`` (ties broken by insertion
    order), with ``col`` its sort-key column.  Because the key is sorted,
    the qualifying rows are exactly the prefix up to
    ``searchsorted(col, bound, side="right")`` — identical, element for
    element, to stably sorting the boolean-filtered subset, so the charged
    test count matches the scalar filter-then-sort path bit for bit.

    This is SDI's dimension-skyline prefix test reduced from an ``O(k)``
    boolean filter plus an ``O(k log k)`` sort per testing point to one
    ``O(log k)`` binary search over an incrementally maintained view.
    """
    k = int(np.searchsorted(col, bound, side="right"))
    if k == 0:
        return -1
    return first_dominator(block[:k], q, counter)
