"""repro — Subset Approach to Efficient Skyline Computation (EDBT 2023).

A full reproduction of Dominique H. Li's subset approach: the subspace-union
Merge pass, the map-based subset-query skyline index, and the boosted
sorting-based skyline algorithms (SFS-Subset, SaLSa-Subset, SDI-Subset), plus
every baseline the paper evaluates against (BSkyTree-S/P, BNL, D&C, Index,
BBS, ...) and the AC/CO/UI workload generators.

Quickstart
----------
>>> import repro
>>> data = repro.generate("UI", n=2000, d=6, seed=42)
>>> result = repro.skyline(data, algorithm="sdi-subset")
>>> result.size > 0 and result.mean_dominance_tests > 0
True
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import available_algorithms, get_algorithm
from repro.algorithms.base import SkylineResult
from repro.core import SkylineIndex, SubsetBoost, merge
from repro.core.autotune import tune_sigma
from repro.data import generate
from repro.dataset import Dataset
from repro.engine import (
    ExecutionContext,
    Plan,
    Planner,
    PreparedDataset,
    SkylineEngine,
)
from repro.errors import ReproError
from repro.fast import fast_skyline
from repro.query import SkylineQuery
from repro.stats.counters import DominanceCounter

__version__ = "1.0.0"

__all__ = [
    "Dataset",
    "DominanceCounter",
    "ExecutionContext",
    "Plan",
    "Planner",
    "PreparedDataset",
    "ReproError",
    "SkylineEngine",
    "SkylineIndex",
    "SkylineQuery",
    "SkylineResult",
    "SubsetBoost",
    "available_algorithms",
    "fast_skyline",
    "generate",
    "get_algorithm",
    "merge",
    "skyline",
    "tune_sigma",
    "__version__",
]


def skyline(
    data: "Dataset | np.ndarray",
    algorithm: str | None = "sdi-subset",
    sigma: int | None = None,
    counter: DominanceCounter | None = None,
    engine: SkylineEngine | None = None,
    **kwargs: object,
) -> SkylineResult:
    """Compute the skyline of ``data`` with the named algorithm.

    Parameters
    ----------
    data:
        A :class:`Dataset` or any ``(n, d)`` array-like; minimisation
        preference in every dimension.
    algorithm:
        Registry name; see :func:`available_algorithms`.  ``None`` lets the
        engine's planner choose adaptively from dataset statistics.
    sigma:
        Stability threshold for ``*-subset`` algorithms.
    counter:
        Optional :class:`DominanceCounter` to accumulate instrumentation.
    engine:
        Optional shared :class:`SkylineEngine`; repeated calls through one
        engine reuse prepared Merge results and sort orders.  A fresh
        (cold) engine is used per call when omitted — identical dominance
        tests to a direct algorithm call.

    Returns
    -------
    SkylineResult
        Sorted skyline row indices plus exact dominance-test accounting and
        the executed :class:`Plan` (``result.plan``).
    """
    engine = engine if engine is not None else SkylineEngine()
    return engine.execute(
        data, algorithm, sigma, counter=counter, host_options=kwargs or None
    )
