"""Index — the B+-tree skyline algorithm (Tan, Eng, Ooi, VLDB 2001).

Every point is assigned to the list of its *minimum-value dimension* and
each of the ``d`` lists is stored in a B+-tree keyed by that minimum value.
The scan merges the lists in increasing key order; each batch of equal-key
points is tested against the skyline found so far.  Processing by
increasing minimum coordinate is weakly monotone (a dominator's ``minC``
never exceeds its dominated point's), and batches are ordered internally by
the strictly monotone coordinate sum, so dominators are always tested
first.

Early termination mirrors SaLSa's stop rule: once the smallest pending key
exceeds the smallest maximum coordinate among confirmed skyline points,
everything still queued is strictly dominated.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.algorithms.base import SkylineAlgorithm
from repro.dataset import Dataset
from repro.dominance import first_dominator
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures.bplustree import BPlusTree

__all__ = ["IndexSkyline"]


class IndexSkyline(SkylineAlgorithm):
    """Tan et al.'s Index algorithm over per-dimension B+-trees.

    Parameters
    ----------
    tree_order:
        Fan-out of the underlying B+-trees.
    """

    name = "index"

    def __init__(self, tree_order: int = 32) -> None:
        if tree_order < 3:
            raise InvalidParameterError(f"tree_order must be >= 3, got {tree_order}")
        self.tree_order = tree_order

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        values = dataset.values
        n, d = values.shape
        # Shift so the min corner is the origin; Index's minC reasoning
        # assumes non-negative data like the paper's [0, 1] benchmarks.
        shifted = values - values.min(axis=0)
        assignment = np.argmin(shifted, axis=1)
        min_values = shifted[np.arange(n), assignment]

        trees = [BPlusTree(order=self.tree_order) for _ in range(d)]
        min_keys: list[float] = min_values.tolist()
        for point_id, list_id in enumerate(assignment.tolist()):
            trees[list_id].insert(min_keys[point_id], point_id)

        # Merge the d sorted lists by key with a heap of iterators.
        heap: list[tuple[float, int, int]] = []
        iterators = [tree.items() for tree in trees]
        for list_id, iterator in enumerate(iterators):
            for key, point_id in iterator:
                heapq.heappush(heap, (key, list_id, point_id))
                break

        sums = shifted.sum(axis=1)
        max_coords: list[float] = shifted.max(axis=1).tolist()
        stop_value = float("inf")
        skyline: list[int] = []
        sky_block = values[:0]

        while heap:
            batch_key = heap[0][0]
            if batch_key > stop_value:
                break
            batch: list[int] = []
            while heap and heap[0][0] == batch_key:
                key, list_id, point_id = heapq.heappop(heap)
                batch.append(point_id)
                for next_key, next_id in iterators[list_id]:
                    heapq.heappush(heap, (next_key, list_id, next_id))
                    break
            batch.sort(key=lambda pid: sums[pid])
            for point_id in batch:
                if first_dominator(sky_block, values[point_id], counter) == -1:
                    skyline.append(point_id)
                    sky_block = values[np.asarray(skyline, dtype=np.intp)]
                    if max_coords[point_id] < stop_value:
                        stop_value = max_coords[point_id]
        return skyline
