"""Monotone sorting functions for presort-and-scan skyline algorithms.

Section 2: a sorting function ``f`` must satisfy ``f(p) < f(q) ⇒ q ⊀ p`` —
when points are scanned in ascending ``f`` order, a dominator is always
seen before the points it dominates.  The choice of ``f`` is "heuristic
[and] heavily affects the total number of dominance tests", which the
``ablation_sort`` benchmark measures.

All keys are computed after shifting by the dataset's componentwise minimum
corner so they remain well-defined (entropy) and monotone for arbitrary
real-valued data; on the paper's ``[0, 1]`` benchmarks the shift is a no-op.
Non-strict keys (``minc``) must be paired with the strict ``sum`` tiebreak.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["sort_keys", "sum_tiebreak"]

SORT_FUNCTIONS = ("entropy", "sum", "euclidean", "minc")


def sort_keys(
    values: np.ndarray, function: str, corner: np.ndarray | None = None
) -> np.ndarray:
    """Per-point sort keys for one of :data:`SORT_FUNCTIONS`.

    ``entropy``, ``sum`` and ``euclidean`` are strictly monotone under
    dominance; ``minc`` (SaLSa's min-coordinate) is weakly monotone and
    relies on the caller's tiebreak.

    ``corner`` overrides the shift origin: a boosted scan phase computes
    keys over only the merge survivors but must keep the *full* dataset's
    minimum corner so the order matches a whole-dataset sort exactly.
    """
    if function not in SORT_FUNCTIONS:
        raise InvalidParameterError(
            f"unknown sort function {function!r}; expected one of {SORT_FUNCTIONS}"
        )
    shifted = values - (values.min(axis=0) if corner is None else corner)
    if function == "entropy":
        return np.log1p(shifted).sum(axis=1)
    if function == "sum":
        return shifted.sum(axis=1)
    if function == "euclidean":
        return np.sqrt(np.einsum("ij,ij->i", shifted, shifted))
    return shifted.min(axis=1)  # minc


def sum_tiebreak(values: np.ndarray) -> np.ndarray:
    """The strictly monotone tiebreak shared by every scan order."""
    return values.sum(axis=1)
