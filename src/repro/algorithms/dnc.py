"""D&C — divide-and-conquer skyline (Kung et al. 1975; Börzsönyi et al. 2001).

Splits the dataset at the median of a splitting dimension, recursively
computes both half skylines, then filters the "worse" half's skyline
against the "better" half's (points in the high half can never dominate
points in the low half).  When every point shares the same value in the
splitting dimension the next dimension is tried; fully identical points are
mutually non-dominating and returned as-is.

The merge step uses the exact-count block kernel, so its dominance tests
are charged exactly like a pairwise merge loop.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SkylineAlgorithm
from repro.dataset import Dataset
from repro.dominance import first_dominator
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter

__all__ = ["DivideAndConquer"]


class DivideAndConquer(SkylineAlgorithm):
    """Median-split divide and conquer with a pairwise merge filter.

    Parameters
    ----------
    leaf_size:
        Partitions at or below this size are solved with a direct scan.
    """

    name = "dnc"

    def __init__(self, leaf_size: int = 64) -> None:
        if leaf_size < 1:
            raise InvalidParameterError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        ids = np.arange(dataset.cardinality, dtype=np.intp)
        return self._skyline(dataset.values, ids, depth=0, counter=counter)

    def _skyline(
        self,
        values: np.ndarray,
        ids: np.ndarray,
        depth: int,
        counter: DominanceCounter,
    ) -> list[int]:
        if ids.shape[0] <= self.leaf_size:
            return self._scan(values, ids, counter)
        d = values.shape[1]
        for probe in range(d):
            dim = (depth + probe) % d
            column = values[ids, dim]
            median = float(np.median(column))
            in_low = column <= median
            if 0 < in_low.sum() < ids.shape[0]:
                break
        else:
            # Every dimension is constant across this partition: all points
            # are identical, mutually non-dominating -> all are skyline.
            return [int(i) for i in ids]
        low = ids[in_low]
        high = ids[~in_low]
        low_sky = self._skyline(values, low, depth + 1, counter)
        high_sky = self._skyline(values, high, depth + 1, counter)
        low_block = values[np.asarray(low_sky, dtype=np.intp)]
        merged = list(low_sky)
        for point_id in high_sky:
            if first_dominator(low_block, values[point_id], counter) == -1:
                merged.append(point_id)
        return merged

    def _scan(
        self, values: np.ndarray, ids: np.ndarray, counter: DominanceCounter
    ) -> list[int]:
        """Direct skyline of a small partition: sum-sorted SFS scan."""
        order = ids[np.argsort(values[ids].sum(axis=1), kind="stable")]
        skyline: list[int] = []
        block = values[:0]
        for point_id in order:
            point_id = int(point_id)
            if first_dominator(block, values[point_id], counter) == -1:
                skyline.append(point_id)
                block = values[np.asarray(skyline, dtype=np.intp)]
        return skyline
