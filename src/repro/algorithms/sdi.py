"""SDI — Sorted Dimension Indexes skyline (Liu & Li, EDBT 2020).

SDI is the sort-and-scan algorithm the subset approach boosts best.  The
sort phase builds one sorted index of point ids per dimension; the scan
phase traverses dimensions breadth-first, always advancing the dimension
whose *dimension skyline* (the skyline points confirmed through it) is the
smallest.  Each visited point is tested only against skyline points whose
value in the current dimension does not exceed its own (the dimension
skyline prefix), ordered by that value — the cheapest plausible dominators
first.

Key properties preserved from the original design:

- a point already classified through another dimension is skipped;
- each per-dimension order breaks value ties with the strictly monotone
  coordinate sum, so a dominator precedes its dominated points in *every*
  dimension order — classification is always complete when a point is
  first visited (this is what makes duplicate-heavy data like WEATHER
  safe);
- the point with the minimum Euclidean distance serves as the *stop
  point*: once every dimension's cursor has passed it strictly, all
  unvisited points are strictly dominated by it and the scan terminates.

One dominance test is charged per compared skyline point, exactly as a
sequential early-exit loop would.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SkylineAlgorithm
from repro.core.container import ListContainer, SkylineContainer
from repro.dataset import Dataset
from repro.dominance import first_dominator
from repro.stats.counters import DominanceCounter

__all__ = ["SDI"]

_UNKNOWN, _SKYLINE, _DOMINATED = 0, 1, 2


class SDI(SkylineAlgorithm):
    """Sorted-dimension-index skyline with breadth-first dimension traversal."""

    name = "sdi"

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        ids = np.arange(dataset.cardinality, dtype=np.intp)
        masks = np.zeros(dataset.cardinality, dtype=np.int64)
        container = ListContainer(dataset.values)
        return self.run_phase(dataset, ids, masks, container, counter)

    def run_phase(
        self,
        dataset: Dataset,
        ids: np.ndarray,
        masks: np.ndarray,
        container: SkylineContainer,
        counter: DominanceCounter,
    ) -> list[int]:
        values = dataset.values
        d = dataset.dimensionality
        ids = np.asarray(ids, dtype=np.intp)
        if ids.size == 0:
            return []
        tiebreak = values.sum(axis=1)

        # Sort phase: one index per dimension over the active ids.
        orders = [
            ids[np.lexsort((tiebreak[ids], values[ids, dim]))] for dim in range(d)
        ]

        # Stop point: minimum Euclidean distance to the minimum corner.
        corner = values[ids].min(axis=0)
        shifted = values[ids] - corner
        stop_id = int(ids[np.argmin(np.einsum("ij,ij->i", shifted, shifted))])
        stop_point = values[stop_id]

        status = np.zeros(dataset.cardinality, dtype=np.int8)
        cursors = [0] * d
        dim_sky_count = [0] * d
        open_dims = set(range(d))
        skyline: list[int] = []

        while open_dims:
            dim = min(open_dims, key=lambda k: (dim_sky_count[k], k))
            order = orders[dim]
            cursor = cursors[dim]
            while cursor < order.shape[0] and status[order[cursor]] != _UNKNOWN:
                cursor += 1
            if cursor >= order.shape[0]:
                cursors[dim] = cursor
                open_dims.discard(dim)
                continue
            point_id = int(order[cursor])
            cursors[dim] = cursor + 1
            point = values[point_id]

            candidate_ids, block = container.candidates(int(masks[point_id]))
            if block.shape[0]:
                prefix = block[:, dim] <= point[dim]
                block = block[prefix]
                if block.shape[0]:
                    block = block[np.argsort(block[:, dim], kind="stable")]
            if first_dominator(block, point, counter) == -1:
                status[point_id] = _SKYLINE
                skyline.append(point_id)
                container.add(point_id, int(masks[point_id]))
                dim_sky_count[dim] += 1
            else:
                status[point_id] = _DOMINATED

            if point[dim] > stop_point[dim]:
                # The cursor passed the stop point in this dimension; once
                # that holds in every dimension, all unvisited points are
                # strictly worse than the stop point everywhere.
                open_dims.discard(dim)

        return skyline
