"""SDI — Sorted Dimension Indexes skyline (Liu & Li, EDBT 2020).

SDI is the sort-and-scan algorithm the subset approach boosts best.  The
sort phase builds one sorted index of point ids per dimension; the scan
phase traverses dimensions breadth-first, always advancing the dimension
whose *dimension skyline* (the skyline points confirmed through it) is the
smallest.  Each visited point is tested only against skyline points whose
value in the current dimension does not exceed its own (the dimension
skyline prefix), ordered by that value — the cheapest plausible dominators
first.

Key properties preserved from the original design:

- a point already classified through another dimension is skipped;
- each per-dimension order breaks value ties with the strictly monotone
  coordinate sum, so a dominator precedes its dominated points in *every*
  dimension order — classification is always complete when a point is
  first visited (this is what makes duplicate-heavy data like WEATHER
  safe);
- the point with the minimum Euclidean distance serves as the *stop
  point*: once every dimension's cursor has passed it strictly, all
  unvisited points are strictly dominated by it and the scan terminates.

One dominance test is charged per compared skyline point, exactly as a
sequential early-exit loop would.

Batched scan
------------
The scalar scan pays, per testing point, an ``O(k)`` boolean prefix filter
plus an ``O(k log k)`` sort over its candidate block.  The batched scan
(default) instead maintains one *sorted view* per ``(subspace, dimension)``
pair: candidate blocks are stable-prefix (see
:class:`~repro.core.container.SkylineContainer`), so each view is repaired
by merging only the newly confirmed rows (a permutation merge over two 1-D
arrays), and the per-point test collapses to a binary search, a gather of
the eligible prefix rows, and one ``first_dominator`` kernel call (the
sorted-block form is :func:`~repro.dominance.first_dominator_prefix`).
The tested prefix is element-for-element identical to the scalar
filter-then-stable-sort path, so skyline output and charged dominance
tests are bit-identical; ``SDI(batched=False)`` keeps the scalar reference
path for differential tests and benchmarks.
"""

from __future__ import annotations

from collections.abc import MutableMapping

import numpy as np

from repro.algorithms.base import SkylineAlgorithm
from repro.core.container import ListContainer, SkylineContainer
from repro.dataset import Dataset
from repro.dominance import first_dominator
from repro.obs.trace import current_tracer
from repro.stats.counters import DominanceCounter

__all__ = ["SDI"]

_UNKNOWN, _SKYLINE, _DOMINATED = 0, 1, 2


class _SortedView:
    """A candidate block's row order sorted by one dimension (ties: insertion).

    Stores the sorted column plus a *permutation* into the base block —
    never the rows themselves — so repairing after an append moves two 1-D
    arrays instead of a ``d``-wide block, and the per-point prefix gather
    only materialises the few rows the kernel actually tests.

    ``extend`` merges the rows appended to the base block since the last
    repair; because new rows carry strictly larger insertion sequence
    numbers than every old row, inserting them after their equal-valued
    predecessors (``side="right"``) preserves the (value, insertion-order)
    sort exactly as a stable re-sort of the whole block would.
    """

    __slots__ = ("n", "col", "perm")

    def __init__(self) -> None:
        self.n = 0
        self.col = np.empty(0, dtype=np.float64)
        self.perm = np.empty(0, dtype=np.intp)

    def extend(self, base: np.ndarray, dim: int) -> None:
        total = base.shape[0]
        new_col = base[self.n : total, dim]
        order = np.argsort(new_col, kind="stable")
        new_col = new_col[order]
        new_perm = order + self.n
        k = self.col.shape[0]
        if k == 0:
            self.col = new_col.copy()
            self.perm = new_perm
        else:
            m = new_col.shape[0]
            # Scatter-merge: equivalent to np.insert at the searchsorted
            # positions but without its per-call overhead.  Positions are
            # non-decreasing (new_col is sorted), so adding arange keeps
            # equal-valued new rows in insertion order.
            target = self.col.searchsorted(new_col, side="right")
            target = target + np.arange(m, dtype=np.intp)
            col = np.empty(k + m, dtype=np.float64)
            perm = np.empty(k + m, dtype=np.intp)
            old = np.ones(k + m, dtype=bool)
            old[target] = False
            col[target] = new_col
            col[old] = self.col
            perm[target] = new_perm
            perm[old] = self.perm
            self.col = col
            self.perm = perm
        self.n = total


class SDI(SkylineAlgorithm):
    """Sorted-dimension-index skyline with breadth-first dimension traversal.

    Parameters
    ----------
    batched:
        Use incrementally maintained per-``(subspace, dimension)`` sorted
        views for the prefix test (default).  ``False`` re-filters and
        re-sorts the candidate block per testing point — the scalar
        reference path with identical output and test accounting.
    """

    name = "sdi"

    #: The sort phase (per-dimension indexes + stop point) is cacheable via
    #: the ``sort_cache`` parameter of :meth:`run_phase`.
    supports_sort_cache = True

    def __init__(self, batched: bool = True) -> None:
        self.batched = batched

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        ids = np.arange(dataset.cardinality, dtype=np.intp)
        masks = np.zeros(dataset.cardinality, dtype=np.int64)
        container = ListContainer(dataset.values)
        return self.run_phase(dataset, ids, masks, container, counter)

    def run_phase(
        self,
        dataset: Dataset,
        ids: np.ndarray,
        masks: np.ndarray,
        container: SkylineContainer,
        counter: DominanceCounter,
        sort_cache: MutableMapping[str, object] | None = None,
    ) -> list[int]:
        values = dataset.values
        d = dataset.dimensionality
        ids = np.asarray(ids, dtype=np.intp)
        if ids.size == 0:
            return []

        cached = sort_cache.get("sdi_sort") if sort_cache is not None else None
        if cached is not None:
            orders, stop_point = cached  # type: ignore[misc]
        else:
            with current_tracer().span(
                "sort", host=self.name, points=int(ids.size), dims=d
            ):
                tiebreak = values.sum(axis=1)

                # Sort phase: one index per dimension over the active ids.
                orders = [
                    ids[np.lexsort((tiebreak[ids], values[ids, dim]))]
                    for dim in range(d)
                ]

                # Stop point: minimum Euclidean distance to the minimum
                # corner.
                corner = values[ids].min(axis=0)
                shifted = values[ids] - corner
                stop_id = int(
                    ids[np.argmin(np.einsum("ij,ij->i", shifted, shifted))]
                )
                stop_point = values[stop_id]
            if sort_cache is not None:
                sort_cache["sdi_sort"] = (orders, stop_point)

        # Plain-Python data structures for the per-point bookkeeping: the
        # scan loop runs once per remaining point, and bytearray/list
        # indexing with native ints is several times cheaper than numpy
        # scalar extraction at that call rate.
        status = bytearray(dataset.cardinality)
        masks_list = masks.tolist()
        order_lists = [order.tolist() for order in orders]
        stop_list = stop_point.tolist()
        cursors = [0] * d
        dim_sky_count = [0] * d
        open_dims = set(range(d))
        skyline: list[int] = []
        views: dict[tuple[int, int], _SortedView] = {}
        batched = self.batched
        mask_sensitive = container.uses_masks

        def select(k: int) -> tuple[int, int]:
            return (dim_sky_count[k], k)

        # The breadth-first choice min(open_dims, key=select) only changes
        # when a dimension's skyline count grows or a dimension closes, so
        # the selection is cached across the (majority of) iterations that
        # change neither — the choice sequence is identical.
        chosen = -1
        while open_dims:
            if chosen < 0:
                chosen = min(open_dims, key=select)
            dim = chosen
            order_list = order_lists[dim]
            length = len(order_list)
            cursor = cursors[dim]
            while cursor < length and status[order_list[cursor]] != _UNKNOWN:
                cursor += 1
            if cursor >= length:
                cursors[dim] = cursor
                open_dims.discard(dim)
                chosen = -1
                continue
            point_id = order_list[cursor]
            cursors[dim] = cursor + 1
            point = values[point_id]
            mask = masks_list[point_id]

            candidate_ids, block = container.candidates(mask)
            if batched:
                view_key = (mask if mask_sensitive else 0, dim)
                view = views.get(view_key)
                if view is None:
                    view = _SortedView()
                    views[view_key] = view
                if view.n != block.shape[0]:
                    view.extend(block, dim)
                bound = point[dim]
                cut = int(view.col.searchsorted(bound, side="right"))
                undominated = (
                    cut == 0
                    or first_dominator(block[view.perm[:cut]], point, counter)
                    == -1
                )
            else:
                bound = point[dim]
                if block.shape[0]:
                    prefix = block[:, dim] <= bound
                    block = block[prefix]
                    if block.shape[0]:
                        block = block[np.argsort(block[:, dim], kind="stable")]
                undominated = first_dominator(block, point, counter) == -1
            if undominated:
                status[point_id] = _SKYLINE
                skyline.append(point_id)
                container.add(point_id, mask)
                dim_sky_count[dim] += 1
                chosen = -1
            else:
                status[point_id] = _DOMINATED

            if bound > stop_list[dim]:
                # The cursor passed the stop point in this dimension; once
                # that holds in every dimension, all unvisited points are
                # strictly worse than the stop point everywhere.
                open_dims.discard(dim)
                chosen = -1

        return skyline
