"""SFS — Sort-Filter-Skyline (Chomicki, Godfrey, Gryz, Liang, ICDE 2003).

Presort all points by a monotone scoring function (entropy by default, as in
the original paper), then scan: each point is tested against the confirmed
skyline; survivors join it.  Because a dominator always precedes its
dominated points in the scan order, one pass suffices.

The scan body lives in :class:`~repro.algorithms.base.SortScanAlgorithm`;
SFS only contributes the sort order.  Swap the container for the subset
index via :class:`~repro.core.boost.SubsetBoost` to obtain SFS-Subset.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.algorithms.base import SortScanAlgorithm
from repro.algorithms.sortkeys import sort_keys, sum_tiebreak

__all__ = ["SFS"]


class SFS(SortScanAlgorithm):
    """Sort-Filter-Skyline with a configurable monotone sort function.

    Parameters
    ----------
    sort_function:
        One of ``"entropy"`` (default, as in the SFS paper), ``"sum"``,
        ``"euclidean"`` or ``"minc"``.
    """

    name = "sfs"

    def __init__(self, sort_function: str = "entropy") -> None:
        self.sort_function = sort_function
        sort_keys(np.zeros((1, 1)), sort_function)  # validate eagerly

    def sort_ids(self, values: np.ndarray, ids: np.ndarray) -> np.ndarray:
        keys, ties = self._key_arrays(values, ids)
        return ids[np.lexsort((ties, keys))]

    def sort_keyer(
        self,
    ) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]:
        # The SFS order is a pure lexsort over per-row key arrays, so it is
        # key-decomposable: cached_sort_order stores the arrays and can
        # suffix-repair the order after a delta (keys recomputed only for
        # appended rows).
        return self._key_arrays

    def _key_arrays(
        self, values: np.ndarray, ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        # Keys are computed over only the active rows (the merge survivors
        # in a boosted scan) but shifted by the full dataset's minimum
        # corner, so the order is identical to a whole-dataset sort while
        # skipping the transcendental key math for every pruned point.
        subset = values[ids]
        keys = sort_keys(subset, self.sort_function, corner=values.min(axis=0))
        return keys, sum_tiebreak(subset)
