"""ZSearch-style blocked Z-order skyline with region pruning.

The plain Z-order scan (:mod:`repro.algorithms.zorder_scan`) tests every
point individually.  ZSearch / Z-sky [16] owe their speed to *region-level*
pruning: contiguous runs of the Z-ordered data form regions whose lower
corner bounds every member, so one dominance test against the corner can
discard a whole region.

This implementation keeps the sound core of that idea without the ZB-tree
machinery: points are sorted by Morton address and cut into fixed-size
blocks; blocks are visited in Z-order (a monotone order, so dominators are
always confirmed first).  For each block, the componentwise minimum corner
is tested against the current skyline — if the corner is strictly
dominated, every member is strictly dominated (``q >= corner >= s`` with
strictness inherited through the corner) and the block is skipped with one
charged test instead of ``block_size``.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SkylineAlgorithm
from repro.algorithms.sortkeys import sum_tiebreak
from repro.dataset import Dataset
from repro.dominance import first_dominator
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures.zorder import grid_coordinates, z_addresses

__all__ = ["ZSearch"]


class ZSearch(SkylineAlgorithm):
    """Blocked Z-order scan with corner-based region pruning.

    Parameters
    ----------
    block_size:
        Number of Z-order-contiguous points per region.
    bits:
        Grid resolution per dimension for Morton addressing.
    """

    name = "zsearch"

    def __init__(self, block_size: int = 64, bits: int = 10) -> None:
        if block_size < 1:
            raise InvalidParameterError(f"block_size must be >= 1, got {block_size}")
        if bits < 1 or bits > 21:
            raise InvalidParameterError(f"bits must be in [1, 21], got {bits}")
        self.block_size = block_size
        self.bits = bits

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        values = dataset.values
        grid = grid_coordinates(values, bits=self.bits)
        addresses = z_addresses(grid, bits=self.bits)
        tiebreak = sum_tiebreak(values)
        order = sorted(range(dataset.cardinality), key=lambda i: (addresses[i], tiebreak[i]))

        skyline: list[int] = []
        sky_block = values[:0]
        for start in range(0, len(order), self.block_size):
            member_ids = order[start : start + self.block_size]
            members = values[np.asarray(member_ids, dtype=np.intp)]
            if len(member_ids) > 1 and sky_block.shape[0]:
                corner = members.min(axis=0)
                if first_dominator(sky_block, corner, counter) != -1:
                    continue  # the whole region is strictly dominated
            for point_id in member_ids:
                if first_dominator(sky_block, values[point_id], counter) == -1:
                    skyline.append(point_id)
                    sky_block = values[np.asarray(skyline, dtype=np.intp)]
        return skyline
