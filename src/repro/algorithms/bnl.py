"""BNL — Block Nested Loops (Börzsönyi, Kossmann, Stocker, ICDE 2001).

The original external-memory algorithm keeps a bounded *window* of
incomparable points in memory.  Each input point is compared against the
window: if dominated it is discarded, if it dominates window points those
are evicted, and otherwise it enters the window — or overflows to a
temporary file that seeds the next pass.  A window point is a confirmed
skyline point once every point read after it has been processed, which the
classic implementation tracks with input timestamps.

This in-memory reproduction keeps the multi-pass structure (bounded window,
overflow list, timestamps) because the window bound is what shapes BNL's
dominance-test profile.  One *test* is charged per window comparison; a
comparison inspects both directions of one point pair.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SkylineAlgorithm
from repro.dataset import Dataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter

__all__ = ["BNL"]


class BNL(SkylineAlgorithm):
    """Block-nested-loops skyline with a bounded window and overflow passes.

    Parameters
    ----------
    window_size:
        Maximum number of points kept in the in-memory window; the original
        paper's main-memory budget.  ``None`` means unbounded (single pass).
    """

    name = "bnl"

    def __init__(self, window_size: int | None = 1024) -> None:
        if window_size is not None and window_size < 1:
            raise InvalidParameterError(
                f"window_size must be >= 1 or None, got {window_size}"
            )
        self.window_size = window_size

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        values = dataset.values
        skyline: list[int] = []
        # Stream entries are (point_id, timestamp); the timestamp records
        # when the point entered the stream, so window points older than
        # every overflow point have been compared against the whole rest of
        # the input and are confirmed skyline points at end of pass.
        stream: list[tuple[int, int]] = [(i, 0) for i in range(dataset.cardinality)]
        clock = 1
        while stream:
            window: list[tuple[int, int]] = []
            overflow: list[tuple[int, int]] = []
            for point_id, _ in stream:
                point = values[point_id]
                dominated = False
                survivors: list[tuple[int, int]] = []
                for idx, (w_id, w_born) in enumerate(window):
                    counter.add()
                    w_point = values[w_id]
                    if bool(np.all(w_point <= point)) and bool(np.any(w_point < point)):
                        # The window point dominates the incoming point:
                        # discard it; the unexamined window tail is kept.
                        dominated = True
                        survivors.extend(window[idx:])
                        break
                    if not (
                        bool(np.all(point <= w_point)) and bool(np.any(point < w_point))
                    ):
                        survivors.append((w_id, w_born))
                    # else: the incoming point dominates w -> w is evicted.
                window = survivors
                if dominated:
                    continue
                if self.window_size is None or len(window) < self.window_size:
                    window.append((point_id, clock))
                else:
                    overflow.append((point_id, clock))
                clock += 1
            if not overflow:
                skyline.extend(point_id for point_id, _ in window)
                break
            # Window points older than the oldest overflow point survived a
            # comparison against every later input point: confirmed skyline.
            oldest_overflow = min(born for _, born in overflow)
            carried = [(pid, born) for pid, born in window if born >= oldest_overflow]
            skyline.extend(pid for pid, born in window if born < oldest_overflow)
            stream = carried + overflow
        return skyline
