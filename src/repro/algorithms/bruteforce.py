"""The naïve O(dN²) pairwise skyline (Section 1's nested-loop description).

Used as the semantic oracle by the test suite: every other algorithm must
return exactly this skyline.  Each point is compared against the whole
dataset with the exact-count block kernel, stopping (in accounting terms) at
its first dominator.
"""

from __future__ import annotations

from repro.algorithms.base import SkylineAlgorithm
from repro.dataset import Dataset
from repro.dominance import first_dominator
from repro.stats.counters import DominanceCounter

__all__ = ["BruteForce"]


class BruteForce(SkylineAlgorithm):
    """Nested-loop pairwise comparison; correct, simple, quadratic."""

    name = "bruteforce"

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        values = dataset.values
        skyline: list[int] = []
        for point_id in range(dataset.cardinality):
            if first_dominator(values, values[point_id], counter) == -1:
                skyline.append(point_id)
        return skyline
