"""Z-order scan — a sorting-based skyline in the ZSearch/Z-sky lineage.

Z-order addresses are monotone under grid dominance: raising any coordinate
of a grid cell raises its Morton address, so a dominator never follows the
points it dominates in Z-address order.  Scanning in that order is
therefore a valid monotone presort (Section 2's requirement), with the
pleasant locality properties that made Z-order attractive to ZSearch [16].

Grid quantisation can map distinct values to the same cell, so the scan
order breaks Z-address ties with the strictly monotone coordinate sum.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SortScanAlgorithm
from repro.algorithms.sortkeys import sum_tiebreak
from repro.errors import InvalidParameterError
from repro.structures.zorder import grid_coordinates, z_addresses

__all__ = ["ZOrderScan"]


class ZOrderScan(SortScanAlgorithm):
    """Presorted scan in Morton-address order.

    Parameters
    ----------
    bits:
        Grid resolution per dimension (``2**bits`` cells).
    """

    name = "zorder"

    def __init__(self, bits: int = 10) -> None:
        if bits < 1 or bits > 21:
            raise InvalidParameterError(f"bits must be in [1, 21], got {bits}")
        self.bits = bits

    def sort_ids(self, values: np.ndarray, ids: np.ndarray) -> np.ndarray:
        grid = grid_coordinates(values, bits=self.bits)
        addresses = z_addresses(grid, bits=self.bits)
        tiebreak = sum_tiebreak(values)
        ordered = sorted(
            (int(i) for i in ids),
            key=lambda pid: (addresses[pid], tiebreak[pid]),
        )
        return np.asarray(ordered, dtype=np.intp)
