"""LESS — Linear Elimination Sort for Skyline (Godfrey, Shipley, Gryz).

LESS extends SFS with an *elimination-filter* (EF) window applied during the
initial sort pass: a small set of the best-scoring points seen so far, used
to discard clearly dominated points before the sort completes.  Survivors
are then sorted by entropy and scanned exactly like SFS.

This in-memory reproduction keeps both phases: phase 1 streams the input in
its original order through the EF window (charging its tests); phase 2 is
the standard presorted container scan, so LESS is boostable like SFS.
"""

from __future__ import annotations

from collections.abc import MutableMapping

import numpy as np

from repro.algorithms.base import SortScanAlgorithm, monotone_order
from repro.algorithms.sortkeys import sort_keys, sum_tiebreak
from repro.core.container import SkylineContainer
from repro.dataset import Dataset
from repro.dominance import first_dominator
from repro.errors import InvalidParameterError
from repro.obs.trace import current_tracer
from repro.stats.counters import DominanceCounter

__all__ = ["LESS"]


class LESS(SortScanAlgorithm):
    """SFS with an elimination-filter window in the sort phase.

    Parameters
    ----------
    window_size:
        Number of low-entropy points kept as eliminators during phase 1.
    """

    name = "less"

    def __init__(self, window_size: int = 16) -> None:
        if window_size < 1:
            raise InvalidParameterError(f"window_size must be >= 1, got {window_size}")
        self.window_size = window_size

    def sort_ids(self, values: np.ndarray, ids: np.ndarray) -> np.ndarray:
        keys = sort_keys(values, "entropy")
        return monotone_order(keys, sum_tiebreak(values), ids)

    def run_phase(
        self,
        dataset: Dataset,
        ids: np.ndarray,
        masks: np.ndarray,
        container: SkylineContainer,
        counter: DominanceCounter,
        sort_cache: MutableMapping[str, object] | None = None,
    ) -> list[int]:
        values = dataset.values
        # The cached artefact is the *phase-2* order: replaying it skips the
        # EF pass (and its dominance tests) entirely, which is exactly the
        # warm-path saving — the EF pass only prunes points the container
        # scan would reject anyway, so the final skyline is unchanged.
        cached = sort_cache.get("order") if sort_cache is not None else None
        if cached is not None:
            order = cached
        else:
            # The sort span covers the EF pass too — it charges dominance
            # tests during sorting, which the span's counter delta exposes.
            with current_tracer().span(
                "sort", counter=counter, host=self.name, points=int(len(ids))
            ):
                keys = sort_keys(values, "entropy")

                # Phase 1: elimination-filter pass in input order.  The EF
                # window holds the lowest-entropy points seen so far; points
                # it dominates are dropped before the (simulated) sort.
                # Evicted window members are ordinary survivors — the window
                # is a filter, not the skyline.
                ef_ids: list[int] = []
                survivors: list[int] = []
                for point_id in ids:
                    point_id = int(point_id)
                    point = values[point_id]
                    block = (
                        values[np.asarray(ef_ids, dtype=np.intp)]
                        if ef_ids
                        else values[:0]
                    )
                    if first_dominator(block, point, counter) != -1:
                        continue
                    survivors.append(point_id)
                    if len(ef_ids) < self.window_size:
                        ef_ids.append(point_id)
                    else:
                        worst = max(
                            range(len(ef_ids)), key=lambda k: keys[ef_ids[k]]
                        )
                        if keys[point_id] < keys[ef_ids[worst]]:
                            ef_ids[worst] = point_id

                # Phase 2: SFS scan over the survivors.
                order = monotone_order(
                    keys, sum_tiebreak(values), np.asarray(survivors, dtype=np.intp)
                )
            if sort_cache is not None:
                sort_cache["order"] = order
        skyline: list[int] = []
        for point_id in order:
            point_id = int(point_id)
            mask = int(masks[point_id])
            _, block = container.candidates(mask)
            if first_dominator(block, values[point_id], counter) == -1:
                skyline.append(point_id)
                container.add(point_id, mask)
        return skyline
