"""SaLSa — Sort and Limit Skyline algorithm (Bartolini, Ciaccia, Patella).

SaLSa sorts by the *minimum coordinate* (``minC``) and maintains a *stop
point*: the confirmed skyline point with the smallest maximum coordinate.
As soon as the next point's ``minC`` exceeds that value, every remaining
point is strictly worse than the stop point in all dimensions and the scan
terminates without testing them — which is why unboosted SaLSa's mean
dominance test number can drop below 1 on correlated data (Table 8).

``minC`` is only weakly monotone, so the scan order breaks ties with the
strictly monotone coordinate sum; the stop rule uses a strict comparison so
that duplicate points of the stop point are never discarded unseen.
"""

from __future__ import annotations

from collections.abc import MutableMapping

import numpy as np

from repro.algorithms.base import SortScanAlgorithm, cached_sort_order
from repro.algorithms.sortkeys import sort_keys, sum_tiebreak
from repro.core.container import SkylineContainer
from repro.dataset import Dataset
from repro.dominance import first_dominator
from repro.stats.counters import DominanceCounter

__all__ = ["SaLSa"]


class SaLSa(SortScanAlgorithm):
    """Sort-and-limit scan with the min-coordinate sort and a stop point."""

    name = "salsa"

    def sort_ids(self, values: np.ndarray, ids: np.ndarray) -> np.ndarray:
        # Same subset-with-global-corner trick as SFS: identical order to a
        # whole-dataset sort, key math only over the active rows.
        subset = values[ids]
        keys = sort_keys(subset, "minc", corner=values.min(axis=0))
        return ids[np.lexsort((sum_tiebreak(subset), keys))]

    def run_phase(
        self,
        dataset: Dataset,
        ids: np.ndarray,
        masks: np.ndarray,
        container: SkylineContainer,
        counter: DominanceCounter,
        sort_cache: MutableMapping[str, object] | None = None,
    ) -> list[int]:
        values = dataset.values
        order = cached_sort_order(sort_cache, self.sort_ids, values, ids)
        # The stop rule compares one point's minimum coordinate against
        # another's maximum across dimensions, which is only meaningful in a
        # common per-dimension frame: use the same min-corner shift as the
        # sort keys, so the scan order and the stop metric agree.  Both
        # coordinates are derived once, for the scanned rows only, in scan
        # position order — minC is then exactly the (non-decreasing) sort
        # key, so the stop rule defines a scan *prefix* and the per-point
        # stop test collapses to one binary search per stop-point update.
        cached = sort_cache.get("salsa_scan") if sort_cache is not None else None
        if cached is None:
            shifted = values[order] - values.min(axis=0)
            cached = (shifted.min(axis=1), shifted.max(axis=1).tolist())
            if sort_cache is not None:
                sort_cache["salsa_scan"] = cached
        min_keys, max_coords = cached  # type: ignore[misc]
        masks_list = masks.tolist()
        stop_value = float("inf")
        skyline: list[int] = []
        order_list = order.tolist()
        limit = len(order_list)
        position = 0
        while position < limit:
            point_id = order_list[position]
            mask = masks_list[point_id]
            _, block = container.candidates(mask)
            if first_dominator(block, values[point_id], counter) == -1:
                skyline.append(point_id)
                container.add(point_id, mask)
                if max_coords[position] < stop_value:
                    stop_value = max_coords[position]
                    # Every point q past the cut has minC(q) > stop_value,
                    # hence q[i] >= minC(q) > max(stop point) >= stop[i] in
                    # all dimensions: strictly dominated, never scanned.
                    # The strict `>` keeps duplicates of the stop point in.
                    limit = int(
                        np.searchsorted(min_keys, stop_value, side="right")
                    )
            position += 1
        return skyline
