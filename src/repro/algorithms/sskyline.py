"""SSkyline — the in-place two-pointer skyline (Park et al.; Chester et al.).

The sequential baseline of the multicore study the paper's real datasets
come from [6].  SSkyline keeps a shrinking active region of the id array:
a *head* candidate is compared against a scanning pointer; dominated
points are swapped behind a tail pointer and forgotten, and when the head
itself is dominated the scanner's point becomes the new head and the scan
restarts.  When the scanner passes the tail, the head is a confirmed
skyline point.

No presorting, no auxiliary structure, O(1) extra memory over the id
permutation — which is why it parallelises so well in [6].  One dominance
test is charged per head/scanner pair inspection (both directions of one
pair count as a single test, as in BNL).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SkylineAlgorithm
from repro.dataset import Dataset
from repro.stats.counters import DominanceCounter

__all__ = ["SSkyline"]


class SSkyline(SkylineAlgorithm):
    """In-place two-pointer skyline without presorting."""

    name = "sskyline"

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        values = dataset.values
        ids = list(range(dataset.cardinality))
        skyline: list[int] = []
        tail = len(ids) - 1
        head_pos = 0
        while head_pos <= tail:
            head = ids[head_pos]
            scan = head_pos + 1
            while scan <= tail:
                counter.add()
                p = values[head]
                q = values[ids[scan]]
                if bool(np.all(p <= q)) and bool(np.any(p < q)):
                    # Head dominates the scanned point: retire it behind tail.
                    ids[scan], ids[tail] = ids[tail], ids[scan]
                    tail -= 1
                elif bool(np.all(q <= p)) and bool(np.any(q < p)):
                    # Scanned point dominates the head: it becomes the new
                    # head, the old head retires, and the scan restarts.
                    ids[head_pos] = ids[scan]
                    ids[scan], ids[tail] = ids[tail], ids[scan]
                    tail -= 1
                    head = ids[head_pos]
                    scan = head_pos + 1
                else:
                    scan += 1
            skyline.append(head)
            head_pos += 1
        return skyline
