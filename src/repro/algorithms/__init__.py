"""Skyline algorithms: sorting-based hosts, partitioning-based baselines.

Use :func:`repro.algorithms.registry.get_algorithm` (or the top-level
:func:`repro.skyline`) to obtain instances by name; the classes are also
importable directly for programmatic composition.
"""

from repro.algorithms.base import SkylineAlgorithm, SkylineResult, SortScanAlgorithm
from repro.algorithms.bbs import BBS
from repro.algorithms.bnl import BNL
from repro.algorithms.bruteforce import BruteForce
from repro.algorithms.bskytree import BSkyTreeP, BSkyTreeS
from repro.algorithms.dnc import DivideAndConquer
from repro.algorithms.external import ExternalBNL
from repro.algorithms.index_tree import IndexSkyline
from repro.algorithms.less import LESS
from repro.algorithms.registry import available_algorithms, get_algorithm
from repro.algorithms.salsa import SaLSa
from repro.algorithms.sdi import SDI
from repro.algorithms.sfs import SFS
from repro.algorithms.sskyline import SSkyline
from repro.algorithms.zorder_scan import ZOrderScan
from repro.algorithms.zsearch import ZSearch

__all__ = [
    "BBS",
    "BNL",
    "BSkyTreeP",
    "BSkyTreeS",
    "BruteForce",
    "DivideAndConquer",
    "ExternalBNL",
    "IndexSkyline",
    "LESS",
    "SDI",
    "SFS",
    "SSkyline",
    "SaLSa",
    "SkylineAlgorithm",
    "SkylineResult",
    "SortScanAlgorithm",
    "ZOrderScan",
    "ZSearch",
    "available_algorithms",
    "get_algorithm",
]
