"""Algorithm base classes, result type and the shared sort-and-scan template.

Every algorithm exposes ``compute(data, counter=None) -> SkylineResult``.
Sorting-based algorithms additionally implement the boostable
``run_phase(dataset, ids, masks, container, counter)`` hook consumed by
:class:`repro.core.boost.SubsetBoost`: the scan's skyline store is an
abstract :class:`~repro.core.container.SkylineContainer`, so swapping the
plain list for the subset index changes nothing else about the algorithm —
exactly the paper's "container" framing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterator, MutableMapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.container import ListContainer, SkylineContainer
from repro.dataset import Dataset, as_dataset
from repro.dominance import first_dominator
from repro.obs.clock import timed
from repro.obs.trace import current_tracer
from repro.stats.counters import DominanceCounter

if TYPE_CHECKING:  # import cycle: the engine executes these algorithms
    from repro.engine.plan import Plan
    from repro.obs.trace import Trace


@dataclass(frozen=True)
class SkylineResult:
    """The outcome of one skyline computation.

    Attributes
    ----------
    indices:
        Sorted original row ids of the skyline points.
    algorithm:
        Name of the algorithm that produced the result.
    dominance_tests:
        Exact number of point-pair dominance tests performed.
    elapsed_seconds:
        Wall-clock time of the computation.
    cardinality:
        Dataset size ``N`` (denominator of the mean-DT metric).
    counter:
        The full :class:`DominanceCounter` of the run — index traversal
        and cache counters included — so callers can audit the work done,
        not just the headline test count.
    plan:
        The :class:`~repro.engine.plan.Plan` that produced this result
        when the run went through :class:`~repro.engine.SkylineEngine`;
        ``None`` for direct algorithm calls.
    trace:
        The :class:`~repro.obs.trace.Trace` of the run when the engine's
        context carried an enabled :class:`~repro.obs.trace.Tracer`;
        ``None`` otherwise (the default ``NullTracer`` records nothing).
    """

    indices: np.ndarray
    algorithm: str
    dominance_tests: int
    elapsed_seconds: float
    cardinality: int
    counter: DominanceCounter = field(repr=False, default_factory=DominanceCounter)
    plan: "Plan | None" = field(repr=False, default=None)
    trace: "Trace | None" = field(repr=False, default=None)

    @property
    def size(self) -> int:
        """Number of skyline points."""
        return int(self.indices.shape[0])

    @property
    def mean_dominance_tests(self) -> float:
        """The paper's DT metric: total tests / N."""
        return self.dominance_tests / self.cardinality

    def __contains__(self, point_id: int) -> bool:
        return bool(np.isin(point_id, self.indices))


def run_timed(
    name: str,
    data: Dataset | np.ndarray,
    counter: DominanceCounter | None,
    body: Callable[[Dataset, DominanceCounter], list[int]],
) -> SkylineResult:
    """Shared compute wrapper: coerce input, time the body, package a result."""
    dataset = as_dataset(data)
    run_counter = counter if counter is not None else DominanceCounter()
    ids, elapsed = timed(lambda: body(dataset, run_counter))
    counter = run_counter
    indices = np.asarray(sorted(set(int(i) for i in ids)), dtype=np.intp)
    if len(indices) != len(ids):
        raise AssertionError(f"{name} returned duplicate skyline ids")
    return SkylineResult(
        indices=indices,
        algorithm=name,
        dominance_tests=counter.tests,
        elapsed_seconds=elapsed,
        cardinality=dataset.cardinality,
        counter=counter,
    )


class SkylineAlgorithm(ABC):
    """Common interface of every skyline algorithm in the library."""

    name: str = "abstract"

    #: Whether this algorithm's ``run_phase`` (if any) accepts a
    #: ``sort_cache`` mapping for amortizing its sort phase across repeated
    #: runs.  The engine only threads a cache through hosts that opt in.
    supports_sort_cache: bool = False

    def compute(
        self,
        data: Dataset | np.ndarray,
        counter: DominanceCounter | None = None,
    ) -> SkylineResult:
        """Compute the skyline of ``data`` under minimisation preference."""
        return run_timed(self.name, data, counter, self._run)

    @abstractmethod
    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        """Return the skyline point ids (any order, no duplicates)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def _progressive_scan(
    algorithm: "SortScanAlgorithm",
    data: Dataset | np.ndarray,
    counter: DominanceCounter | None,
) -> Iterator[int]:
    dataset = as_dataset(data)
    counter = counter if counter is not None else DominanceCounter()
    ids = np.arange(dataset.cardinality, dtype=np.intp)
    order = algorithm.sort_ids(dataset.values, ids)
    container = ListContainer(dataset.values)
    values = dataset.values
    for point_id in order:
        point_id = int(point_id)
        _, block = container.candidates(0)
        if first_dominator(block, values[point_id], counter) == -1:
            container.add(point_id, 0)
            yield point_id


class _ProgressiveMixin:
    """Progressive (online) skyline output for presorted scans.

    Sorting-based algorithms emit skyline points as they are confirmed —
    the property §1 highlights ("sorting-based skyline algorithms ... can
    progressively output the skyline points").  ``progressive`` exposes
    that as a generator: consume the first ``k`` results without paying
    for the rest of the scan.
    """

    def progressive(
        self,
        data: Dataset | np.ndarray,
        counter: DominanceCounter | None = None,
    ) -> Iterator[int]:
        """Yield skyline ids in scan order; stop consuming any time.

        Uses the plain presorted scan (no stop-point shortcuts), so the
        yielded set is always the complete skyline if fully consumed.
        """
        assert isinstance(self, SortScanAlgorithm)
        return _progressive_scan(self, data, counter)


class SortScanAlgorithm(SkylineAlgorithm, _ProgressiveMixin):
    """Template for presort-and-scan algorithms (SFS, LESS, SaLSa, Z-order).

    Subclasses supply :meth:`sort_ids` (a monotone order: a dominator always
    precedes the points it dominates) and optionally override
    :meth:`run_phase` for scans with extra machinery (stop points, EF
    windows).  The default scan is the SFS loop: test each point against the
    container's candidates; survivors join the container.
    """

    #: ``run_phase`` accepts an optional ``sort_cache`` mapping that stores
    #: the computed scan order (and any derived sort-phase state) so a
    #: :class:`~repro.engine.prepared.PreparedDataset` can amortize the sort
    #: phase across repeated queries over the same (dataset, merge) pair.
    supports_sort_cache = True

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        ids = np.arange(dataset.cardinality, dtype=np.intp)
        masks = np.zeros(dataset.cardinality, dtype=np.int64)
        container = ListContainer(dataset.values)
        return self.run_phase(dataset, ids, masks, container, counter)

    @abstractmethod
    def sort_ids(self, values: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Return ``ids`` reordered by the algorithm's monotone sort key."""

    def sort_keyer(
        self,
    ) -> Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]] | None:
        """Optional key decomposition of :meth:`sort_ids`.

        When a host can express its order as ``ids[lexsort((ties, keys))]``
        it may return a callable producing ``(keys, ties)`` aligned with
        ``ids``; ``cached_sort_order`` then caches the key arrays alongside
        the order, which is what makes the lazy delta repair possible —
        after a mutation only the appended rows need fresh keys.  ``None``
        (the default) keeps the opaque ``sort_ids`` path.
        """
        return None

    def run_phase(
        self,
        dataset: Dataset,
        ids: np.ndarray,
        masks: np.ndarray,
        container: SkylineContainer,
        counter: DominanceCounter,
        sort_cache: MutableMapping[str, object] | None = None,
    ) -> list[int]:
        """Presorted scan over ``ids`` using ``container`` as skyline store.

        The loop body is deliberately thin: the container serves each
        testing point's candidates as one cached contiguous block (see
        :class:`~repro.core.container.SkylineContainer`'s stable-prefix
        contract), and the per-point mask/id conversions are hoisted into
        single ``tolist`` passes so no numpy scalars are boxed per point.

        ``sort_cache`` (when provided) must be private to one
        ``(algorithm-configuration, dataset, ids)`` triple; the scan order
        is read from it instead of re-sorting when present.
        """
        values = dataset.values
        order = cached_sort_order(
            sort_cache, self.sort_ids, values, ids, keyer=self.sort_keyer()
        )
        masks_list = masks.tolist()
        skyline: list[int] = []
        for point_id in order.tolist():
            mask = masks_list[point_id]
            _, block = container.candidates(mask)
            if first_dominator(block, values[point_id], counter) == -1:
                skyline.append(point_id)
                container.add(point_id, mask)
        return skyline


def monotone_order(keys: np.ndarray, tiebreak: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Order ``ids`` by ``(keys, tiebreak)`` ascending via a stable lexsort."""
    selection = np.lexsort((tiebreak[ids], keys[ids]))
    return ids[selection]


def cached_sort_order(
    sort_cache: MutableMapping[str, object] | None,
    sorter: Callable[[np.ndarray, np.ndarray], np.ndarray],
    values: np.ndarray,
    ids: np.ndarray,
    keyer: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]
    | None = None,
) -> np.ndarray:
    """Fetch the scan order from ``sort_cache`` or compute and store it.

    The cache owner (:class:`~repro.engine.prepared.PreparedDataset`) keys
    the mapping by ``(algorithm-configuration, dataset, ids)``, so inside
    this helper the lookup key is just ``"order"``.  ``None`` disables
    caching and always sorts.

    ``keyer`` (see :meth:`SortScanAlgorithm.sort_keyer`) decomposes the
    order into ``ids[lexsort((ties, keys))]``; the key arrays are cached
    alongside the order.  When the owner tagged the entry with a
    ``pending_delta`` (:meth:`PreparedDataset.apply_delta`), the cached
    order is suffix-repaired here instead of recomputed: deleted ids drop
    out, survivors remap, keys are computed only for the appended rows,
    and one lexsort over the merged key arrays reproduces the cold order
    bit for bit (the tag is only written when the dataset's minimum corner
    — the keys' reference point — is unchanged).
    """
    if sort_cache is not None:
        pending = sort_cache.pop("pending_delta", None)
        cached = sort_cache.get("order")
        if cached is not None:
            if pending is None:
                return cached  # type: ignore[return-value]
            if keyer is not None and "keys" in sort_cache:
                repaired = _repair_cached_order(
                    sort_cache, pending, keyer, values, ids
                )
                if repaired is not None:
                    return repaired
            # Unrepairable (no key arrays, or the id set diverged from the
            # logged delta): drop the stale state and sort cold.
            sort_cache.pop("order", None)
            sort_cache.pop("keys", None)
            sort_cache.pop("ties", None)
    with current_tracer().span(
        "sort", points=int(ids.shape[0]), cache_attached=sort_cache is not None
    ):
        if keyer is not None:
            keys, ties = keyer(values, ids)
            order = ids[np.lexsort((ties, keys))]
        else:
            keys = ties = None
            order = sorter(values, ids)
    if sort_cache is not None:
        sort_cache["order"] = order
        if keys is not None:
            sort_cache["keys"] = keys
            sort_cache["ties"] = ties
    return order


def _repair_cached_order(
    sort_cache: MutableMapping[str, object],
    pending: object,
    keyer: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]],
    values: np.ndarray,
    ids: np.ndarray,
) -> np.ndarray | None:
    """Suffix-repair a keyed sort-cache entry; ``None`` falls back cold.

    ``pending`` is the ``(deleted_old_ids, first_new_id)`` tag written by
    ``PreparedDataset.apply_delta``.  The cached ``keys``/``ties`` arrays
    are aligned with the ascending id set the order was computed over, so
    the repair filters + remaps them, keys only the fresh tail ids, and
    re-lexsorts — identical output to a cold sort because kept rows keep
    their coordinates and the corner is unchanged.
    """
    deleted, first_new_id = pending  # type: ignore[misc]
    order = sort_cache["order"]
    keys = sort_cache["keys"]
    ties = sort_cache["ties"]
    old_ids = np.sort(order)  # type: ignore[arg-type]
    if keys.shape[0] != old_ids.shape[0]:  # type: ignore[union-attr]
        return None
    kept = ~np.isin(old_ids, deleted)
    remapped = old_ids[kept] - np.searchsorted(deleted, old_ids[kept])  # type: ignore[arg-type]
    fresh = ids[ids >= first_new_id]
    expected = np.concatenate([remapped, fresh])
    if expected.shape[0] != ids.shape[0] or not np.array_equal(expected, ids):
        return None
    if fresh.size:
        fresh_keys, fresh_ties = keyer(values, fresh)
    else:
        fresh_keys = np.empty(0, dtype=np.asarray(keys).dtype)
        fresh_ties = np.empty(0, dtype=np.asarray(ties).dtype)
    all_keys = np.concatenate([np.asarray(keys)[kept], fresh_keys])
    all_ties = np.concatenate([np.asarray(ties)[kept], fresh_ties])
    repaired = ids[np.lexsort((all_ties, all_keys))]
    sort_cache["order"] = repaired
    sort_cache["keys"] = all_keys
    sort_cache["ties"] = all_ties
    return repaired
