"""Name-based algorithm registry.

Factories keyed by the names used throughout the paper's tables: plain
hosts (``sfs``, ``salsa``, ``sdi``, ...), their subset-boosted variants
(``sfs-subset``, ``salsa-subset``, ``sdi-subset``, ...) and the baselines
(``bskytree-s``, ``bskytree-p``, ``bnl``, ``dnc``, ``index``, ``bbs``,
``zorder``, ``bruteforce``).

Keyword arguments are forwarded to the algorithm constructor; boosted names
additionally accept ``sigma`` for the merge phase's stability threshold.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.algorithms.base import SkylineAlgorithm
from repro.algorithms.bbs import BBS
from repro.algorithms.bnl import BNL
from repro.algorithms.bruteforce import BruteForce
from repro.algorithms.bskytree import BSkyTreeP, BSkyTreeS
from repro.algorithms.dnc import DivideAndConquer
from repro.algorithms.external import ExternalBNL
from repro.algorithms.index_tree import IndexSkyline
from repro.algorithms.less import LESS
from repro.algorithms.salsa import SaLSa
from repro.algorithms.sdi import SDI
from repro.algorithms.sfs import SFS
from repro.algorithms.sskyline import SSkyline
from repro.algorithms.zorder_scan import ZOrderScan
from repro.algorithms.zsearch import ZSearch
from repro.core.boost import SubsetBoost
from repro.errors import UnknownAlgorithmError

__all__ = ["available_algorithms", "get_algorithm"]

_PLAIN: dict[str, Callable[..., SkylineAlgorithm]] = {
    "bruteforce": BruteForce,
    "bnl": BNL,
    "external-bnl": ExternalBNL,
    "sfs": SFS,
    "sskyline": SSkyline,
    "less": LESS,
    "salsa": SaLSa,
    "sdi": SDI,
    "zorder": ZOrderScan,
    "zsearch": ZSearch,
    "dnc": DivideAndConquer,
    "index": IndexSkyline,
    "bbs": BBS,
    "bskytree-s": BSkyTreeS,
    "bskytree-p": BSkyTreeP,
}

_BOOSTABLE = ("sfs", "less", "salsa", "sdi", "zorder")


def available_algorithms() -> list[str]:
    """All registered algorithm names, plain first, then boosted."""
    return [*_PLAIN, *(f"{host}-subset" for host in _BOOSTABLE)]


def get_algorithm(
    name: str,
    sigma: int | None = None,
    index_backend: str = "map",
    **kwargs: object,
) -> SkylineAlgorithm | SubsetBoost:
    """Instantiate an algorithm by registry name.

    Parameters
    ----------
    name:
        One of :func:`available_algorithms` (case-insensitive).
    sigma:
        Stability threshold for ``*-subset`` names; defaults to the paper's
        rounded ``d/3`` at compute time.  Rejected for plain algorithms.
    index_backend:
        Subset-index implementation for ``*-subset`` names (``"map"`` or
        ``"flat"``); rejected (when not the default) for plain algorithms.
    kwargs:
        Forwarded to the algorithm constructor (e.g. ``window_size`` for
        BNL/LESS, ``sort_function`` for SFS).
    """
    key = name.lower()
    if key.endswith("-subset"):
        host_name = key.removesuffix("-subset")
        if host_name not in _BOOSTABLE:
            raise UnknownAlgorithmError(
                f"{name!r}: host {host_name!r} is not boostable; "
                f"boostable hosts are {_BOOSTABLE}"
            )
        host = _PLAIN[host_name](**kwargs)
        return SubsetBoost(host, sigma=sigma, index_backend=index_backend)  # noqa: RPR005 — the registry is the sanctioned factory
    if sigma is not None:
        raise UnknownAlgorithmError(
            f"sigma is only meaningful for '-subset' algorithms, got {name!r}"
        )
    if index_backend != "map":
        raise UnknownAlgorithmError(
            f"index_backend is only meaningful for '-subset' algorithms, "
            f"got {name!r}"
        )
    factory = _PLAIN.get(key)
    if factory is None:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        )
    return factory(**kwargs)
