"""BSkyTree-S and BSkyTree-P (Lee & Hwang, EDBT 2010 / Inf. Syst. 2014).

The state-of-the-art baselines of the paper.  Both select a *balanced pivot
point* and map every point ``q`` to the bitmask of dimensions where ``q`` is
strictly better than the pivot.  Two facts drive both variants (the same
lattice facts the subset approach generalises to multiple pivots):

- ``q1 < q2  ⇒  mask(q1) ⊇ mask(q2)``, so only superset-mask points can
  dominate a point — all other pairs are provably incomparable and their
  dominance tests are *bypassed* (cheap bitwise checks are not charged as
  dominance tests, which is why BSkyTree DT numbers are so low);
- points with an empty mask are weakly dominated by the pivot: pruned
  immediately (equal points are duplicates of the pivot).

**BSkyTree-S** is the sorting variant: one pivot, then a sum-presorted scan
that skips incomparable-mask pairs.  **BSkyTree-P** is the partitioning
variant: points are split into the ``2^d`` mask regions, each region is
solved recursively, and region skylines are filtered only against the
finalised skylines of strict-superset regions (a linear extension of the
region lattice by descending popcount).

Pivot selection follows the balanced heuristic: among the skyline of a
sorted sample prefix, pick the point whose normalised coordinates have the
smallest range — the most "diagonal" direction, which balances the region
lattice.  Sample scan tests are charged like any other dominance test.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SkylineAlgorithm
from repro.dataset import Dataset
from repro.dominance import dominating_subspaces, first_dominator
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures import bitset

__all__ = ["BSkyTreeS", "BSkyTreeP"]

_SAMPLE_CAP = 256


def _select_pivot(
    values: np.ndarray, ids: np.ndarray, counter: DominanceCounter
) -> int:
    """Balanced pivot: the most diagonal point of a sample-prefix skyline."""
    sums = values[ids].sum(axis=1)
    ordered = ids[np.argsort(sums, kind="stable")]
    sample = ordered[: min(ordered.shape[0], _SAMPLE_CAP)]
    sample_sky: list[int] = []
    block = values[:0]
    for point_id in sample:
        point_id = int(point_id)
        if first_dominator(block, values[point_id], counter) == -1:
            sample_sky.append(point_id)
            block = values[np.asarray(sample_sky, dtype=np.intp)]
    lo = values[ids].min(axis=0)
    hi = values[ids].max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)
    normalized = (values[np.asarray(sample_sky, dtype=np.intp)] - lo) / span
    ranges = normalized.max(axis=1) - normalized.min(axis=1)
    return int(sample_sky[int(np.argmin(ranges))])


class BSkyTreeS(SkylineAlgorithm):
    """Sorting variant: pivot-mask incomparability filtering over a sum scan."""

    name = "bskytree-s"

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        values = dataset.values
        ids = np.arange(dataset.cardinality, dtype=np.intp)
        pivot = _select_pivot(values, ids, counter)
        masks = dominating_subspaces(values, values[pivot], counter)

        empty = masks == 0
        equal_pivot = empty & np.all(values == values[pivot], axis=1)
        keep = (~empty) | equal_pivot

        order = ids[keep]
        order = order[np.argsort(values[order].sum(axis=1), kind="stable")]

        sky_ids: list[int] = []
        sky_masks = np.empty(0, dtype=np.int64)
        for point_id in order:
            point_id = int(point_id)
            q_mask = int(masks[point_id])
            # Candidate dominators: skyline points whose mask ⊇ q's mask.
            candidate = bitset.subset_of_many(q_mask, sky_masks)
            block = values[np.asarray(sky_ids, dtype=np.intp)[candidate]]
            if first_dominator(block, values[point_id], counter) == -1:
                sky_ids.append(point_id)
                sky_masks = np.append(sky_masks, np.int64(q_mask))
        return sky_ids


class BSkyTreeP(SkylineAlgorithm):  # noqa: RPR003 — S/P are two variants of one baseline; splitting them would duplicate _select_pivot
    """Partitioning variant: recursive 2^d-region division along the lattice.

    Parameters
    ----------
    leaf_size:
        Regions at or below this size are solved with a direct scan.
    """

    name = "bskytree-p"

    def __init__(self, leaf_size: int = 32) -> None:
        if leaf_size < 1:
            raise InvalidParameterError(f"leaf_size must be >= 1, got {leaf_size}")
        self.leaf_size = leaf_size

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        ids = np.arange(dataset.cardinality, dtype=np.intp)
        return self._skyline(dataset.values, ids, counter)

    def _skyline(
        self, values: np.ndarray, ids: np.ndarray, counter: DominanceCounter
    ) -> list[int]:
        if ids.shape[0] <= self.leaf_size:
            return self._scan(values, ids, counter)
        pivot = _select_pivot(values, ids, counter)
        masks = dominating_subspaces(values[ids], values[pivot], counter)

        empty = masks == 0
        pivot_group = ids[empty & np.all(values[ids] == values[pivot], axis=1)]
        regions: dict[int, np.ndarray] = {}
        nonempty = ids[~empty]
        for mask in np.unique(masks[~empty]):
            regions[int(mask)] = nonempty[masks[~empty] == mask]

        skyline: list[int] = []
        finalized: list[tuple[int, np.ndarray]] = []
        for mask in sorted(regions, key=lambda m: m.bit_count(), reverse=True):
            local = self._skyline(values, regions[mask], counter)
            survivors: list[int] = []
            for point_id in local:
                dominated = False
                for sup_mask, sup_block in finalized:
                    if bitset.is_proper_subset(mask, sup_mask):
                        if first_dominator(sup_block, values[point_id], counter) != -1:
                            dominated = True
                            break
                if not dominated:
                    survivors.append(point_id)
            finalized.append((mask, values[np.asarray(survivors, dtype=np.intp)]))
            skyline.extend(survivors)

        # The pivot (and its duplicates) can be dominated by any region
        # point with weak inequality elsewhere; one test pass settles it.
        if pivot_group.size:
            block = values[np.asarray(skyline, dtype=np.intp)]
            if first_dominator(block, values[pivot], counter) == -1:
                skyline.extend(int(i) for i in pivot_group)
        return skyline

    def _scan(
        self, values: np.ndarray, ids: np.ndarray, counter: DominanceCounter
    ) -> list[int]:
        order = ids[np.argsort(values[ids].sum(axis=1), kind="stable")]
        skyline: list[int] = []
        block = values[:0]
        for point_id in order:
            point_id = int(point_id)
            if first_dominator(block, values[point_id], counter) == -1:
                skyline.append(point_id)
                block = values[np.asarray(skyline, dtype=np.intp)]
        return skyline
