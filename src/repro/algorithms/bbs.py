"""BBS — Branch-and-Bound Skyline (Papadias, Tao, Fu, Seeger, SIGMOD 2003).

Best-first traversal of an R-tree: a min-heap holds tree entries keyed by
*mindist* (the L1 distance from the origin to the entry's MBR).  Popping in
mindist order guarantees that every possible dominator of a point has been
popped — and confirmed — before the point itself, so a single dominance
check against the current skyline settles each entry:

- an inner node whose MBR lower corner is dominated can never contain a
  skyline point and is pruned wholesale;
- a point entry is a skyline point exactly when nothing confirmed
  dominates it.

Dominance checks against MBR corners are charged as dominance tests (they
are point-pair comparisons against a virtual point), matching how the BBS
paper accounts its "dominance examinations".
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.algorithms.base import SkylineAlgorithm
from repro.dataset import Dataset
from repro.dominance import first_dominator
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures.rtree import RTree

__all__ = ["BBS"]


class BBS(SkylineAlgorithm):
    """Branch-and-bound skyline over an STR bulk-loaded R-tree.

    Parameters
    ----------
    max_entries:
        R-tree node fan-out.
    """

    name = "bbs"

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 2:
            raise InvalidParameterError(f"max_entries must be >= 2, got {max_entries}")
        self.max_entries = max_entries

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        values = dataset.values
        # Shift so mindist-to-origin ordering is monotone for any real data.
        shifted = values - values.min(axis=0)
        tree = RTree(shifted, max_entries=self.max_entries)

        skyline: list[int] = []
        sky_block = shifted[:0]
        tiebreak = itertools.count()
        heap: list[tuple[float, int, object]] = [
            (tree.root.rect.mindist(), next(tiebreak), tree.root)
        ]
        while heap:
            _, _, entry = heapq.heappop(heap)
            if isinstance(entry, tuple):
                point_id, coords = entry
                if first_dominator(sky_block, np.asarray(coords), counter) == -1:
                    skyline.append(int(point_id))
                    sky_block = shifted[np.asarray(skyline, dtype=np.intp)]
                continue
            node = entry
            corner = np.asarray(node.rect.low)
            if first_dominator(sky_block, corner, counter) != -1:
                continue  # the whole subtree is dominated
            if node.is_leaf:
                for point_id, coords in node.entries:
                    point_mindist = float(sum(coords))
                    heapq.heappush(heap, (point_mindist, next(tiebreak), (point_id, coords)))
            else:
                for child in node.children:
                    heapq.heappush(
                        heap, (child.rect.mindist(), next(tiebreak), child)
                    )
        return skyline
