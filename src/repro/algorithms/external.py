"""External-memory BNL over the simulated paged disk.

The original BNL (Börzsönyi et al.) is specified against a buffer-pool
budget: one input page streams through memory while a bounded window of
incomparable points occupies the rest; points that do not fit overflow to
a temporary file that seeds the next pass.  :class:`ExternalBNL` runs that
exact discipline over :mod:`repro.structures.pagedstore`, so both cost
dimensions of the original analysis are measurable: dominance tests (the
paper's metric) *and* page I/O (reads/writes land in
``counter.extras['page_reads'/'page_writes']``).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.base import SkylineAlgorithm
from repro.dataset import Dataset
from repro.errors import InvalidParameterError
from repro.stats.counters import DominanceCounter
from repro.structures.pagedstore import IOCounter, PagedFile

__all__ = ["ExternalBNL"]


class ExternalBNL(SkylineAlgorithm):
    """Block-nested-loops with a page-budgeted window and overflow files.

    Parameters
    ----------
    page_size:
        Rows per disk page.
    memory_pages:
        Buffer-pool budget in pages; one page is reserved for the input
        stream, the rest bound the window (``(memory_pages - 1) *
        page_size`` points).
    """

    name = "external-bnl"

    def __init__(self, page_size: int = 128, memory_pages: int = 16) -> None:
        if page_size < 1:
            raise InvalidParameterError(f"page_size must be >= 1, got {page_size}")
        if memory_pages < 2:
            raise InvalidParameterError(
                f"memory_pages must be >= 2 (input page + window), got {memory_pages}"
            )
        self.page_size = page_size
        self.memory_pages = memory_pages

    def _run(self, dataset: Dataset, counter: DominanceCounter) -> list[int]:
        io = IOCounter()
        stream = PagedFile.from_rows(io, self.page_size, dataset.values)
        window_capacity = (self.memory_pages - 1) * self.page_size
        values = dataset.values
        skyline: list[int] = []
        clock = 1

        while len(stream) > 0:
            window: list[tuple[int, int]] = []
            overflow = PagedFile(io, self.page_size)
            overflow_births: dict[int, int] = {}
            for page in stream.pages():
                for point_id, _ in page:
                    point = values[point_id]
                    dominated = False
                    survivors: list[tuple[int, int]] = []
                    for idx, (w_id, w_born) in enumerate(window):
                        counter.add()
                        w_point = values[w_id]
                        if bool(np.all(w_point <= point)) and bool(
                            np.any(w_point < point)
                        ):
                            dominated = True
                            survivors.extend(window[idx:])
                            break
                        if not (
                            bool(np.all(point <= w_point))
                            and bool(np.any(point < w_point))
                        ):
                            survivors.append((w_id, w_born))
                    window = survivors
                    if dominated:
                        continue
                    if len(window) < window_capacity:
                        window.append((point_id, clock))
                    else:
                        overflow.append(point_id, values[point_id])
                        overflow_births[point_id] = clock
                    clock += 1
            overflow.flush()
            if len(overflow) == 0:
                skyline.extend(point_id for point_id, _ in window)
                break
            oldest_overflow = min(overflow_births.values())
            carried = [(pid, born) for pid, born in window if born >= oldest_overflow]
            skyline.extend(pid for pid, born in window if born < oldest_overflow)
            # Carried window points are re-written in front of the overflow
            # to seed the next pass, exactly like BNL's temp-file shuffle.
            next_stream = PagedFile(io, self.page_size)
            for point_id, _ in carried:
                next_stream.append(point_id, values[point_id])
            for page in overflow.pages():
                for point_id, row in page:
                    next_stream.append(point_id, row)
            next_stream.flush()
            stream = next_stream

        counter.extras["page_reads"] = float(io.reads)
        counter.extras["page_writes"] = float(io.writes)
        return skyline
