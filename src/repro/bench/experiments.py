"""One entry point per table and figure of the paper.

Each experiment function takes a :class:`~repro.bench.sweep.SweepConfig` and
returns an :class:`ExperimentReport` whose ``text`` is the paper-style table
and whose ``data`` is the raw machine-readable measurement (used by the
pytest benchmarks and by EXPERIMENTS.md generation).

Experiment ids follow the paper: ``table1`` .. ``table17``, ``fig2``,
``fig4_5``, ``fig6``, plus the four ``ablation_*`` studies motivated by
design choices the paper calls out but does not table.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.bench.ascii_chart import bar_chart, line_chart
from repro.bench.runner import DEFAULT_ALGORITHMS, run_algorithms, run_one
from repro.bench.sweep import SweepConfig
from repro.bench.tables import format_histogram_table, format_paper_table
from repro.core.autotune import tune_sigma
from repro.core.merge import PIVOT_STRATEGIES, merge
from repro.core.stability import default_threshold
from repro.data import generate, house, nba, weather
from repro.data.real import HOUSE_CARDINALITY, NBA_CARDINALITY, WEATHER_CARDINALITY
from repro.dataset import Dataset
from repro.dominance import dominating_subspaces
from repro.errors import InvalidParameterError
from repro.obs.clock import timed
from repro.stats.counters import DominanceCounter

KINDS = ("AC", "CO", "UI")
_BOOSTED_TRIO = ("sfs-subset", "salsa-subset", "sdi-subset")


@dataclass(frozen=True)
class ExperimentReport:
    """Formatted text plus raw data for one reproduced artefact."""

    experiment: str
    title: str
    text: str
    data: dict = field(default_factory=dict)


# --------------------------------------------------------------------------
# Shared sweep bodies
# --------------------------------------------------------------------------


def _collect(
    datasets: Sequence[tuple[str, Dataset]],
    cfg: SweepConfig,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
) -> tuple[dict, dict]:
    """Run the table line-up over labelled datasets; return DT and RT grids."""
    dt: dict[str, dict[str, float]] = {name: {} for name in algorithms}
    rt: dict[str, dict[str, float]] = {name: {} for name in algorithms}
    for label, dataset in datasets:
        for row in run_algorithms(dataset, algorithms, repeats=cfg.repeats):
            dt[row.algorithm][label] = row.mean_dt
            rt[row.algorithm][label] = row.elapsed_ms
    return dt, rt


def _dim_sweep_datasets(kind: str, cfg: SweepConfig):
    n = cfg.card(200_000)
    return [(f"{d}-D", generate(kind, n, d, seed=cfg.seed)) for d in cfg.dims]


def _card_sweep_datasets(kind: str, cfg: SweepConfig):
    return [
        (_card_label(n), generate(kind, n, 8, seed=cfg.seed))
        for n in cfg.cardinalities
    ]


def _card_label(n: int) -> str:
    if n % 1000 == 0:
        return f"{n // 1000}K"
    return str(n)


def _dim_sweep_report(
    kind: str, cfg: SweepConfig, experiment: str, dt_id: str, rt_id: str
) -> ExperimentReport:
    datasets = _dim_sweep_datasets(kind, cfg)
    dt, rt = _collect(datasets, cfg)
    columns = [label for label, _ in datasets]
    n = cfg.card(200_000)
    dt_text = format_paper_table(
        f"{dt_id}: Mean dominance test numbers, {kind}, N={n}, vs dimensionality",
        "Dimensionality",
        columns,
        dt,
        DEFAULT_ALGORITHMS,
    )
    rt_text = format_paper_table(
        f"{rt_id}: Elapsed processor time (ms), {kind}, N={n}, vs dimensionality",
        "Dimensionality",
        columns,
        rt,
        DEFAULT_ALGORITHMS,
    )
    return ExperimentReport(
        experiment=experiment,
        title=f"{dt_id}/{rt_id} ({kind} dimensionality sweep)",
        text=dt_text + "\n\n" + rt_text,
        data={"dt": dt, "rt": rt, "columns": columns, "kind": kind, "n": n},
    )


def _card_sweep_report(
    kind: str, cfg: SweepConfig, experiment: str, dt_id: str, rt_id: str
) -> ExperimentReport:
    datasets = _card_sweep_datasets(kind, cfg)
    dt, rt = _collect(datasets, cfg)
    columns = [label for label, _ in datasets]
    dt_text = format_paper_table(
        f"{dt_id}: Mean dominance test numbers, {kind}, 8-D, vs cardinality",
        "Cardinality",
        columns,
        dt,
        DEFAULT_ALGORITHMS,
    )
    rt_text = format_paper_table(
        f"{rt_id}: Elapsed processor time (ms), {kind}, 8-D, vs cardinality",
        "Cardinality",
        columns,
        rt,
        DEFAULT_ALGORITHMS,
    )
    return ExperimentReport(
        experiment=experiment,
        title=f"{dt_id}/{rt_id} ({kind} cardinality sweep)",
        text=dt_text + "\n\n" + rt_text,
        data={"dt": dt, "rt": rt, "columns": columns, "kind": kind},
    )


# --------------------------------------------------------------------------
# Figures
# --------------------------------------------------------------------------


def fig2(cfg: SweepConfig) -> ExperimentReport:
    """Figure 2: point distribution vs subspace size for a single pivot."""
    n = cfg.card(100_000)
    d = 8
    series: dict[str, list[int]] = {}
    for kind in KINDS:
        dataset = generate(kind, n, d, seed=cfg.seed)
        values = dataset.values
        corner = values.min(axis=0)
        shifted = values - corner
        scores = np.einsum("ij,ij->i", shifted, shifted)
        pivot = int(np.argmin(scores))
        rest = np.delete(np.arange(n), pivot)
        masks = dominating_subspaces(values[rest], values[pivot])  # noqa: RPR001 — figure reports subspace-size distribution, not DT; deliberately unmetered
        masks = masks[masks != 0]  # pruned points carry no subspace
        sizes = np.bitwise_count(masks)
        histogram = np.bincount(sizes, minlength=d + 1)[1 : d + 1]
        series[kind] = [int(v) for v in histogram]
    text = format_histogram_table(
        f"Figure 2: distribution of points vs subspace size "
        f"(single Euclidean pivot, 8-D, N={n})",
        series,
    )
    text += "\n\n" + bar_chart(series, log_x=True)
    return ExperimentReport("fig2", "Figure 2 (single-pivot distribution)", text, {"series": series, "n": n})


def fig6(cfg: SweepConfig) -> ExperimentReport:
    """Figure 6: point distribution vs subspace size with σ = 3."""
    n = cfg.card(100_000)
    d = 8
    series: dict[str, list[int]] = {}
    for kind in KINDS:
        dataset = generate(kind, n, d, seed=cfg.seed)
        merged = merge(dataset, sigma=3)
        sizes = np.bitwise_count(merged.masks)
        histogram = np.bincount(sizes, minlength=d + 1)[1 : d + 1]
        series[kind] = [int(v) for v in histogram]
    text = format_histogram_table(
        f"Figure 6: distribution of points vs subspace size (sigma=3, 8-D, N={n})",
        series,
    )
    text += "\n\n" + bar_chart(series, log_x=True)
    return ExperimentReport("fig6", "Figure 6 (sigma=3 distribution)", text, {"series": series, "n": n})


def fig4_5(cfg: SweepConfig) -> ExperimentReport:
    """Figures 4 & 5: effect of the stability threshold on DT and RT."""
    n = cfg.card(100_000)
    d = 8
    sigmas = list(range(2, d + 1))
    blocks: list[str] = []
    data: dict[str, dict] = {}
    for kind in KINDS:
        dataset = generate(kind, n, d, seed=cfg.seed)
        dt: dict[str, dict[str, float]] = {name: {} for name in _BOOSTED_TRIO}
        rt: dict[str, dict[str, float]] = {name: {} for name in _BOOSTED_TRIO}
        for sigma in sigmas:
            for name in _BOOSTED_TRIO:
                row = run_one(dataset, name, sigma=sigma, repeats=cfg.repeats)
                dt[name][str(sigma)] = row.mean_dt
                rt[name][str(sigma)] = row.elapsed_ms
        columns = [str(s) for s in sigmas]
        blocks.append(
            format_paper_table(
                f"Figure 4 ({kind}): mean dominance tests vs stability threshold "
                f"(8-D, N={n})",
                "sigma",
                columns,
                dt,
                _BOOSTED_TRIO,
            )
        )
        blocks.append(
            line_chart(
                {name: [dt[name][c] for c in columns] for name in _BOOSTED_TRIO},
                columns,
                title=f"Figure 4 ({kind}), log-DT vs sigma",
                log_y=True,
            )
        )
        blocks.append(
            format_paper_table(
                f"Figure 5 ({kind}): elapsed time (ms) vs stability threshold "
                f"(8-D, N={n})",
                "sigma",
                columns,
                rt,
                _BOOSTED_TRIO,
            )
        )
        blocks.append(
            line_chart(
                {name: [rt[name][c] for c in columns] for name in _BOOSTED_TRIO},
                columns,
                title=f"Figure 5 ({kind}), RT (ms) vs sigma",
            )
        )
        data[kind] = {"dt": dt, "rt": rt}
    return ExperimentReport(
        "fig4_5",
        "Figures 4/5 (stability threshold sweep)",
        "\n\n".join(blocks),
        {"sigmas": sigmas, "n": n, **data},
    )


# --------------------------------------------------------------------------
# Tables
# --------------------------------------------------------------------------


def table1(cfg: SweepConfig) -> ExperimentReport:
    """Table 1: skyline sizes of the synthetic datasets."""
    n_dim_sweep = cfg.card(200_000)
    dim_data: dict[str, dict[str, float]] = {}
    for kind in KINDS:
        dim_data[f"{kind} datasets"] = {}
        for d in cfg.dims:
            dataset = generate(kind, n_dim_sweep, d, seed=cfg.seed)
            size = run_one(dataset, "sdi").skyline_size
            dim_data[f"{kind} datasets"][f"{d}-D"] = float(size)
    card_data: dict[str, dict[str, float]] = {}
    for kind in KINDS:
        card_data[f"{kind} datasets"] = {}
        for n in cfg.cardinalities:
            dataset = generate(kind, n, 8, seed=cfg.seed)
            size = run_one(dataset, "sdi").skyline_size
            card_data[f"{kind} datasets"][_card_label(n)] = float(size)
    rows = [f"{kind} datasets" for kind in KINDS]
    text = (
        format_paper_table(
            f"Table 1a: skyline size vs dimensionality (N={n_dim_sweep})",
            "Dimensionality",
            [f"{d}-D" for d in cfg.dims],
            dim_data,
            rows,
        )
        + "\n\n"
        + format_paper_table(
            "Table 1b: skyline size vs cardinality (8-D)",
            "Cardinality",
            [_card_label(n) for n in cfg.cardinalities],
            card_data,
            rows,
        )
    )
    return ExperimentReport(
        "table1", "Table 1 (skyline sizes)", text, {"dims": dim_data, "cards": card_data}
    )


def table2_3(cfg: SweepConfig) -> ExperimentReport:
    return _dim_sweep_report("AC", cfg, "table2_3", "Table 2", "Table 3")


def table4_5(cfg: SweepConfig) -> ExperimentReport:
    return _card_sweep_report("AC", cfg, "table4_5", "Table 4", "Table 5")


def table6_7(cfg: SweepConfig) -> ExperimentReport:
    return _dim_sweep_report("CO", cfg, "table6_7", "Table 6", "Table 7")


def table8_9(cfg: SweepConfig) -> ExperimentReport:
    return _card_sweep_report("CO", cfg, "table8_9", "Table 8", "Table 9")


def table10_11(cfg: SweepConfig) -> ExperimentReport:
    return _dim_sweep_report("UI", cfg, "table10_11", "Table 10", "Table 11")


def table12_13(cfg: SweepConfig) -> ExperimentReport:
    return _card_sweep_report("UI", cfg, "table12_13", "Table 12", "Table 13")


def table14(cfg: SweepConfig) -> ExperimentReport:
    """Table 14: the 4-D UI crossover at 1M points."""
    n = cfg.card(1_000_000)
    dataset = generate("UI", n, 4, seed=cfg.seed)
    dt, rt = _collect([("value", dataset)], cfg)
    skyline = run_one(dataset, "sdi").skyline_size
    data = {
        name: {"DT": dt[name]["value"], "RT (ms)": rt[name]["value"]}
        for name in DEFAULT_ALGORITHMS
    }
    text = format_paper_table(
        f"Table 14: 4-D UI dataset with N={n} (skyline = {skyline} points)",
        "Method",
        ["DT", "RT (ms)"],
        data,
        DEFAULT_ALGORITHMS,
    )
    return ExperimentReport(
        "table14", "Table 14 (4-D UI large N)", text, {"metrics": data, "skyline": skyline}
    )


def _real_table(
    experiment: str,
    title: str,
    dataset: Dataset,
    sigma: int,
    cfg: SweepConfig,
) -> ExperimentReport:
    dt: dict[str, dict[str, float]] = {}
    rt: dict[str, dict[str, float]] = {}
    for name in DEFAULT_ALGORITHMS:
        row = run_one(
            dataset,
            name,
            sigma=sigma if name.endswith("-subset") else None,
            repeats=cfg.repeats,
        )
        dt[name] = {"DT": row.mean_dt}
        rt[name] = {"RT (ms)": row.elapsed_ms}
    skyline = run_one(dataset, "sdi").skyline_size
    data = {
        name: {"DT": dt[name]["DT"], "RT (ms)": rt[name]["RT (ms)"]}
        for name in DEFAULT_ALGORITHMS
    }
    text = format_paper_table(
        f"{title} (N={dataset.cardinality}, d={dataset.dimensionality}, "
        f"skyline={skyline}, sigma={sigma})",
        "Method",
        ["DT", "RT (ms)"],
        data,
        DEFAULT_ALGORITHMS,
    )
    return ExperimentReport(experiment, title, text, {"metrics": data, "sigma": sigma})


def table15(cfg: SweepConfig) -> ExperimentReport:
    """Table 15: the HOUSE dataset (σ = 4)."""
    return _real_table(
        "table15", "Table 15: HOUSE", house(cfg.card(HOUSE_CARDINALITY), seed=cfg.seed), 4, cfg
    )


def table16(cfg: SweepConfig) -> ExperimentReport:
    """Table 16: the NBA dataset (σ = 2)."""
    return _real_table(
        "table16", "Table 16: NBA", nba(cfg.card(NBA_CARDINALITY), seed=cfg.seed), 2, cfg
    )


def table17(cfg: SweepConfig) -> ExperimentReport:
    """Table 17: the WEATHER dataset (σ = 3)."""
    return _real_table(
        "table17",
        "Table 17: WEATHER",
        weather(cfg.card(WEATHER_CARDINALITY), seed=cfg.seed),
        3,
        cfg,
    )


# --------------------------------------------------------------------------
# Ablations
# --------------------------------------------------------------------------


def ablation_sigma(cfg: SweepConfig) -> ExperimentReport:
    """σ = round(d/3) heuristic vs every σ and vs the autotuned choice."""
    from repro.algorithms.sdi import SDI
    from repro.core.boost import SubsetBoost

    n = cfg.card(100_000)
    d = 8
    blocks = []
    data: dict[str, dict] = {}
    for kind in KINDS:
        dataset = generate(kind, n, d, seed=cfg.seed)
        grid: dict[str, dict[str, float]] = {"sdi-subset": {}}
        for sigma in range(2, d + 1):
            row = run_one(dataset, "sdi-subset", sigma=sigma, repeats=cfg.repeats)
            grid["sdi-subset"][f"s={sigma}"] = row.mean_dt
        tuned = tune_sigma(dataset, SDI(), sample_size=min(n, 1000), seed=cfg.seed)
        heuristic = default_threshold(d)
        counter = DominanceCounter()
        boosted = SubsetBoost(  # noqa: RPR005 — ablation isolates the raw boost wiring
            SDI(), sigma=tuned.sigma
        )
        _, tuned_elapsed = timed(lambda: boosted.compute(dataset, counter=counter))
        grid["sdi-subset"][f"tuned({tuned.sigma})"] = counter.tests / n
        blocks.append(
            format_paper_table(
                f"Ablation (sigma, {kind}): DT vs threshold; heuristic d/3 -> "
                f"sigma={heuristic}; autotuned -> sigma={tuned.sigma} "
                f"({tuned_elapsed:.2f}s incl. run)",
                "Method",
                list(grid["sdi-subset"].keys()),
                grid,
                ["sdi-subset"],
            )
        )
        data[kind] = {"grid": grid["sdi-subset"], "tuned": tuned.sigma, "heuristic": heuristic}
    return ExperimentReport(
        "ablation_sigma", "Ablation: stability threshold", "\n\n".join(blocks), data
    )


def ablation_sort(cfg: SweepConfig) -> ExperimentReport:
    """SFS sort-function sensitivity (entropy vs sum vs euclidean vs minc)."""
    from repro.algorithms.sfs import SFS

    n = cfg.card(100_000)
    d = 8
    functions = ("entropy", "sum", "euclidean", "minc")
    dt: dict[str, dict[str, float]] = {f"sfs[{f}]": {} for f in functions}
    for kind in KINDS:
        dataset = generate(kind, n, d, seed=cfg.seed)
        for function in functions:
            counter = DominanceCounter()
            SFS(sort_function=function).compute(dataset, counter=counter)
            dt[f"sfs[{function}]"][kind] = counter.tests / n
    text = format_paper_table(
        f"Ablation (sort functions): SFS mean dominance tests (8-D, N={n})",
        "Sort function",
        list(KINDS),
        dt,
        list(dt),
    )
    return ExperimentReport("ablation_sort", "Ablation: SFS sort functions", text, dt)


def ablation_container(cfg: SweepConfig) -> ExperimentReport:
    """Subset index vs plain list container under an identical merge phase."""
    from repro.algorithms.salsa import SaLSa
    from repro.algorithms.sdi import SDI
    from repro.algorithms.sfs import SFS
    from repro.core.boost import SubsetBoost

    n = cfg.card(100_000)
    d = 8
    hosts = {"sfs": SFS, "salsa": SaLSa, "sdi": SDI}
    dt: dict[str, dict[str, float]] = {}
    rt: dict[str, dict[str, float]] = {}
    for kind in KINDS:
        dataset = generate(kind, n, d, seed=cfg.seed)
        for host_name, host_cls in hosts.items():
            for container in ("list", "subset"):
                label = f"{host_name}+merge[{container}]"
                counter = DominanceCounter()
                boosted = SubsetBoost(  # noqa: RPR005 — ablation isolates the raw boost wiring
                    host_cls(), container=container
                )
                _, elapsed = timed(
                    lambda: boosted.compute(dataset, counter=counter)
                )
                dt.setdefault(label, {})[kind] = counter.tests / n
                rt.setdefault(label, {})[kind] = elapsed * 1000
    text = (
        format_paper_table(
            f"Ablation (container): DT with merge + list vs merge + subset index "
            f"(8-D, N={n})",
            "Variant",
            list(KINDS),
            dt,
            list(dt),
        )
        + "\n\n"
        + format_paper_table(
            "Ablation (container): RT (ms)",
            "Variant",
            list(KINDS),
            rt,
            list(rt),
        )
    )
    return ExperimentReport(
        "ablation_container", "Ablation: container", text, {"dt": dt, "rt": rt}
    )


def ablation_pivot(cfg: SweepConfig) -> ExperimentReport:
    """Merge pivot scoring: Euclidean (paper) vs sum vs maxmin."""
    from repro.algorithms.sdi import SDI
    from repro.core.boost import SubsetBoost

    n = cfg.card(100_000)
    d = 8
    dt: dict[str, dict[str, float]] = {}
    for kind in KINDS:
        dataset = generate(kind, n, d, seed=cfg.seed)
        for strategy in PIVOT_STRATEGIES:
            counter = DominanceCounter()
            SubsetBoost(  # noqa: RPR005 — ablation isolates the raw boost wiring
                SDI(), pivot_strategy=strategy
            ).compute(
                dataset, counter=counter
            )
            dt.setdefault(f"sdi-subset[{strategy}]", {})[kind] = counter.tests / n
    text = format_paper_table(
        f"Ablation (pivot scoring): SDI-Subset mean dominance tests (8-D, N={n})",
        "Pivot strategy",
        list(KINDS),
        dt,
        list(dt),
    )
    return ExperimentReport("ablation_pivot", "Ablation: pivot strategy", text, dt)


def portfolio(cfg: SweepConfig) -> ExperimentReport:
    """Every algorithm in the library on 8-D AC/CO/UI (beyond the paper)."""
    from repro.algorithms.registry import available_algorithms

    n = cfg.card(100_000)
    d = 8
    names = available_algorithms()
    if not cfg.full:
        names = [name for name in names if name != "bruteforce"]
    dt: dict[str, dict[str, float]] = {name: {} for name in names}
    rt: dict[str, dict[str, float]] = {name: {} for name in names}
    for kind in KINDS:
        dataset = generate(kind, n, d, seed=cfg.seed)
        for row in run_algorithms(dataset, names, repeats=cfg.repeats):
            dt[row.algorithm][kind] = row.mean_dt
            rt[row.algorithm][kind] = row.elapsed_ms
    text = (
        format_paper_table(
            f"Portfolio: mean dominance tests, 8-D, N={n}",
            "Algorithm",
            list(KINDS),
            dt,
            names,
        )
        + "\n\n"
        + format_paper_table(
            f"Portfolio: elapsed time (ms), 8-D, N={n}",
            "Algorithm",
            list(KINDS),
            rt,
            names,
        )
    )
    return ExperimentReport(
        "portfolio", "Portfolio (all algorithms)", text, {"dt": dt, "rt": rt}
    )


# --------------------------------------------------------------------------
# Registry
# --------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[[SweepConfig], ExperimentReport]] = {
    "fig2": fig2,
    "fig4_5": fig4_5,
    "fig6": fig6,
    "table1": table1,
    "table2_3": table2_3,
    "table4_5": table4_5,
    "table6_7": table6_7,
    "table8_9": table8_9,
    "table10_11": table10_11,
    "table12_13": table12_13,
    "table14": table14,
    "table15": table15,
    "table16": table16,
    "table17": table17,
    "ablation_sigma": ablation_sigma,
    "ablation_sort": ablation_sort,
    "ablation_container": ablation_container,
    "ablation_pivot": ablation_pivot,
    "portfolio": portfolio,
}

_ALIASES = {
    "fig4": "fig4_5",
    "fig5": "fig4_5",
    "table2": "table2_3",
    "table3": "table2_3",
    "table4": "table4_5",
    "table5": "table4_5",
    "table6": "table6_7",
    "table7": "table6_7",
    "table8": "table8_9",
    "table9": "table8_9",
    "table10": "table10_11",
    "table11": "table10_11",
    "table12": "table12_13",
    "table13": "table12_13",
}


def run_experiment(name: str, cfg: SweepConfig | None = None) -> ExperimentReport:
    """Run one experiment by id (aliases like ``table2`` resolve to pairs)."""
    cfg = cfg or SweepConfig()
    key = _ALIASES.get(name.lower(), name.lower())
    func = EXPERIMENTS.get(key)
    if func is None:
        raise InvalidParameterError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        )
    return func(cfg)
