"""Benchmark harness reproducing every table and figure of the paper.

Run ``python -m repro.bench list`` for the experiment catalogue and
``python -m repro.bench table10 [--scale S] [--full]`` to regenerate one
artefact.  The pytest-benchmark targets under ``benchmarks/`` wrap the same
experiment functions at reduced scale.
"""

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.runner import DEFAULT_ALGORITHMS, run_algorithms
from repro.bench.tables import format_paper_table

__all__ = [
    "DEFAULT_ALGORITHMS",
    "EXPERIMENTS",
    "format_paper_table",
    "run_algorithms",
    "run_experiment",
]
