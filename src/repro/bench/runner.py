"""Measurement runner: one (dataset, algorithm) cell of a paper table."""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms.base import SkylineResult
from repro.dataset import Dataset
from repro.engine import SkylineEngine
from repro.obs.clock import timed
from repro.obs.trace import TracerLike, current_tracer
from repro.stats.counters import DominanceCounter
from repro.stats.metrics import MetricRow

#: The algorithm line-up of Tables 2-14, in the paper's row order.
DEFAULT_ALGORITHMS = (
    "sfs",
    "sfs-subset",
    "salsa",
    "salsa-subset",
    "sdi",
    "sdi-subset",
    "bskytree-s",
    "bskytree-p",
)

#: Pairs whose "Performance Gain" row the paper prints under the boosted row.
BOOSTED_PAIRS = (
    ("sfs", "sfs-subset"),
    ("salsa", "salsa-subset"),
    ("sdi", "sdi-subset"),
)


def run_one(
    dataset: Dataset,
    algorithm: str,
    sigma: int | None = None,
    repeats: int = 1,
    engine: SkylineEngine | None = None,
    tracer: TracerLike | None = None,
    **kwargs: object,
) -> MetricRow:
    """Run one algorithm on one dataset; elapsed time is the mean of repeats.

    Mirrors the paper's protocol: data is in memory before timing starts,
    and elapsed processor time is averaged over ``repeats`` runs (the paper
    uses 10).  Dominance tests are deterministic, so they are taken from
    the first run.

    Each repeat executes through a fresh (cold) :class:`SkylineEngine`, so
    numbers match the paper's one-shot protocol exactly.  Pass a shared
    ``engine`` to measure the warm, prepared-cache path instead.  Every
    repeat is timed by the same :func:`~repro.obs.clock.timed` helper as
    :func:`~repro.algorithms.base.run_timed`, and each lands as one
    ``repeat`` span on ``tracer`` (the ambient tracer when omitted).
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    host_options = kwargs or None
    counter = DominanceCounter()
    tracer = tracer if tracer is not None else current_tracer()

    def one_repeat(
        repeat: int, repeat_counter: DominanceCounter | None
    ) -> tuple[SkylineResult, float]:
        run_engine = engine if engine is not None else SkylineEngine()
        result, elapsed = timed(
            lambda: run_engine.execute(
                dataset,
                algorithm,
                sigma,
                counter=repeat_counter,
                host_options=host_options,
            )
        )
        if tracer.enabled:
            tracer.record(
                "repeat",
                elapsed,
                algorithm=algorithm,
                repeat=repeat,
                cold=engine is None,
            )
        return result, elapsed

    result, elapsed = one_repeat(0, counter)
    for repeat in range(1, repeats):
        _, lap = one_repeat(repeat, None)
        elapsed += lap
    return MetricRow(
        algorithm=algorithm,
        dominance_tests=counter.tests,
        cardinality=dataset.cardinality,
        elapsed_seconds=elapsed / repeats,
        skyline_size=result.size,
    )


def run_algorithms(
    dataset: Dataset,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    sigma: int | None = None,
    repeats: int = 1,
    engine: SkylineEngine | None = None,
) -> list[MetricRow]:
    """Run every named algorithm on ``dataset``; σ applies to boosted names."""
    rows = []
    for name in algorithms:
        row_sigma = sigma if name.endswith("-subset") else None
        rows.append(
            run_one(dataset, name, sigma=row_sigma, repeats=repeats, engine=engine)
        )
    return rows
