"""CLI for the benchmark harness: ``python -m repro.bench <experiment>``.

Examples
--------
::

    python -m repro.bench list
    python -m repro.bench table10 --scale 0.05
    python -m repro.bench all --out results.txt
    python -m repro.bench table2 --full --repeats 10   # the paper's grid
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.sweep import DEFAULT_SCALE, SweepConfig
from repro.obs.clock import timed


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id (e.g. table10, fig2, ablation_sigma), 'all', "
            "'list', or 'report' (writes EXPERIMENTS.md)"
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=DEFAULT_SCALE,
        help=f"cardinality scale factor vs the paper's grid (default {DEFAULT_SCALE})",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the paper's full-size grid (hours in pure Python)",
    )
    parser.add_argument(
        "--repeats", type=int, default=1, help="timing repetitions (paper uses 10)"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument("--out", default=None, help="also append output to this file")
    parser.add_argument(
        "--json",
        default=None,
        help="also write the raw measurement data as JSON to this file",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "report":
        from repro.bench.report import generate_experiments_md

        cfg = SweepConfig(
            scale=args.scale, full=args.full, repeats=args.repeats, seed=args.seed
        )
        document = generate_experiments_md(
            cfg, progress=lambda name: print(f"running {name} ...", file=sys.stderr)
        )
        target = args.out or "EXPERIMENTS.md"
        with open(target, "w") as handle:
            handle.write(document)
        print(f"wrote {target}")
        return 0
    if args.experiment == "list":
        for name, func in EXPERIMENTS.items():
            doc = (func.__doc__ or "").strip().splitlines()[0] if func.__doc__ else ""
            print(f"{name:20s} {doc}")
        return 0
    cfg = SweepConfig(
        scale=args.scale, full=args.full, repeats=args.repeats, seed=args.seed
    )
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    chunks: list[str] = []
    raw: dict[str, dict] = {}
    for name in names:
        report, elapsed = timed(lambda: run_experiment(name, cfg))
        chunk = f"{report.text}\n\n[{report.experiment} completed in {elapsed:.1f}s]"
        print(chunk)
        print()
        chunks.append(chunk)
        raw[report.experiment] = {
            "title": report.title,
            "elapsed_seconds": elapsed,
            "data": report.data,
        }
    if args.out:
        with open(args.out, "a") as handle:
            handle.write("\n\n".join(chunks) + "\n")
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(raw, handle, indent=2, default=str)
    return 0


if __name__ == "__main__":
    sys.exit(main())
