"""EXPERIMENTS.md generation: paper-vs-measured for every table and figure.

Runs the full experiment suite (or consumes pre-computed reports) and
renders a Markdown document that, for each artefact, shows the measured
table next to the paper's published numbers and compares the *shape*:
performance-gain ratios per boosted algorithm at the columns both grids
share, plus automated checks of the paper's qualitative claims (who wins
where).

Entry point: ``python -m repro.bench report [--scale S] [--out FILE]``.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.bench import paper_reference as paper
from repro.bench.experiments import ExperimentReport, run_experiment
from repro.bench.runner import BOOSTED_PAIRS
from repro.bench.sweep import SweepConfig
from repro.stats.metrics import format_gain, performance_gain

#: Sweep experiments and the paper tables they reproduce: id -> (DT, RT).
_SWEEPS: dict[str, tuple[int, int]] = {
    "table2_3": (2, 3),
    "table4_5": (4, 5),
    "table6_7": (6, 7),
    "table8_9": (8, 9),
    "table10_11": (10, 11),
    "table12_13": (12, 13),
}
_SINGLES: dict[str, int] = {"table14": 14, "table15": 15, "table16": 16, "table17": 17}


def _column_pairs(measured_columns: list[str], table: int) -> list[tuple[str, str]]:
    """Align measured columns with paper columns.

    Dimensionality sweeps share labels (``8-D``); cardinality sweeps run at
    scaled N (``4K`` standing in for ``200K``), where position ``i`` of the
    scaled grid corresponds to position ``i`` of the paper's grid.
    """
    paper_columns = list(next(iter(paper.TABLES[table].values())))
    if all(column in paper_columns for column in measured_columns):
        return [(column, column) for column in measured_columns]
    return list(zip(measured_columns, paper_columns))


def _gain_comparison_rows(
    measured: dict[str, dict[str, float]],
    table: int,
    pairs: list[tuple[str, str]],
) -> list[str]:
    """Markdown rows comparing measured vs paper gains per boosted host."""
    lines = [
        "| host | measured col | paper col | paper gain | measured gain |",
        "|---|---|---|---|---|",
    ]
    for host, boosted in BOOSTED_PAIRS:
        for measured_col, paper_col in pairs:
            if paper_col not in paper.TABLES[table].get(host, {}):
                continue
            published = paper.paper_gain(table, host, paper_col)
            got = performance_gain(
                measured[host][measured_col], measured[boosted][measured_col]
            )
            lines.append(
                f"| {host} | {measured_col} | {paper_col} "
                f"| {format_gain(published)} | {format_gain(got)} |"
            )
    return lines


def _sweep_section(report: ExperimentReport, dt_table: int, rt_table: int) -> str:
    columns = report.data["columns"]
    pairs = _column_pairs(columns, dt_table)
    focus = [p for p in pairs if p[1] in ("8-D", "200K")] or pairs[-1:]
    lines = [f"## {report.title}", ""]
    lines.append(
        f"Paper artefacts: Table {dt_table} (mean dominance tests) and "
        f"Table {rt_table} (elapsed ms). Measured at scaled cardinality; "
        "DT is hardware-independent, RT compares ordering only."
    )
    lines.append("")
    lines.append("### Performance-gain shape (paper vs this reproduction)")
    lines.append("")
    lines.extend(_gain_comparison_rows(report.data["dt"], dt_table, pairs))
    lines.append("")
    focus_label = ", ".join(f"{m}↔{p}" for m, p in focus)
    lines.append(f"Gain at the focus column ({focus_label}) in the paper vs here, RT:")
    lines.append("")
    lines.extend(_gain_comparison_rows(report.data["rt"], rt_table, focus))
    lines.append("")
    lines.append("### Measured tables")
    lines.append("")
    lines.append("```")
    lines.append(report.text)
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def _single_section(report: ExperimentReport, table: int) -> str:
    measured = report.data["metrics"]
    lines = [f"## {report.title}", ""]
    lines.append("| method | paper DT | measured DT | paper RT (ms) | measured RT (ms) |")
    lines.append("|---|---|---|---|---|")
    for name in measured:
        p = paper.TABLES[table].get(name, {})
        lines.append(
            f"| {name} | {p.get('DT', float('nan')):.4g} "
            f"| {measured[name]['DT']:.4g} "
            f"| {p.get('RT (ms)', float('nan')):.4g} "
            f"| {measured[name]['RT (ms)']:.4g} |"
        )
    lines.append("")
    lines.append("```")
    lines.append(report.text)
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def _figure_section(report: ExperimentReport) -> str:
    return f"## {report.title}\n\n```\n{report.text}\n```\n"


def _headline_checks(reports: dict[str, ExperimentReport]) -> str:
    """Automated verification of the paper's qualitative claims."""
    checks: list[tuple[str, bool]] = []
    ui = reports["table10_11"].data
    if "8-D" in ui["columns"]:
        checks.append(
            (
                "UI, 8-D: SDI-Subset needs fewer mean dominance tests than SDI "
                "(Table 10)",
                ui["dt"]["sdi-subset"]["8-D"] < ui["dt"]["sdi"]["8-D"],
            )
        )
        checks.append(
            (
                "UI, 8-D: SDI-Subset is faster than BSkyTree-P "
                "(the paper's headline, Table 11)",
                ui["rt"]["sdi-subset"]["8-D"] < ui["rt"]["bskytree-p"]["8-D"],
            )
        )
    ac = reports["table2_3"].data
    if "8-D" in ac["columns"]:
        checks.append(
            (
                "AC, 8-D: the boost still reduces SFS dominance tests (Table 2)",
                ac["dt"]["sfs-subset"]["8-D"] < ac["dt"]["sfs"]["8-D"],
            )
        )
    co = reports["table8_9"].data
    last = co["columns"][-1]
    checks.append(
        (
            f"CO, {last}: unboosted SaLSa/SDI sit below 1.0 mean DT while "
            "boosted variants pay ~1.0 for the merge (Table 8)",
            co["dt"]["salsa"][last] < 1.0 <= co["dt"]["salsa-subset"][last] * 1.1,
        )
    )
    t14 = reports["table14"].data["metrics"]
    checks.append(
        (
            "4-D UI, large N: every boosted method is faster than both "
            "BSkyTree variants (Table 14)",
            all(
                t14[f"{host}-subset"]["RT (ms)"] < t14[b]["RT (ms)"]
                for host, _ in BOOSTED_PAIRS
                for b in ("bskytree-s", "bskytree-p")
            ),
        )
    )
    lines = ["## Headline shape checks", ""]
    for label, ok in checks:
        lines.append(f"- {'✅' if ok else '❌'} {label}")
    lines.append("")
    return "\n".join(lines)


def generate_experiments_md(
    cfg: SweepConfig | None = None,
    progress: Callable[[str], None] | None = None,
) -> str:
    """Run every experiment and render the EXPERIMENTS.md document."""
    cfg = cfg or SweepConfig()
    order = [
        "fig2", "fig4_5", "fig6", "table1",
        *list(_SWEEPS), *list(_SINGLES),
        "ablation_sigma", "ablation_sort", "ablation_container", "ablation_pivot",
    ]
    reports: dict[str, ExperimentReport] = {}
    for name in order:
        if progress:
            progress(name)
        reports[name] = run_experiment(name, cfg)

    n_scale = cfg.card(200_000)
    parts = [
        "# EXPERIMENTS — paper vs this reproduction",
        "",
        "Every table and figure of the EDBT 2023 paper, regenerated by "
        "`python -m repro.bench <experiment>`. The paper measured C++11 on "
        "an AMD Epyc 7702 at 100K-1M points; this document was generated "
        f"in pure Python at scale={cfg.scale} (dimension sweeps use "
        f"N={n_scale}), dims up to {cfg.dims[-1]}-D. Absolute numbers "
        "therefore differ; the comparison targets the paper's *shape*: "
        "who wins, by what factor, and where the crossovers fall. "
        "Mean dominance test numbers (DT) are hardware-independent.",
        "",
        _headline_checks(reports),
    ]
    parts.append(_figure_section(reports["fig2"]))
    parts.append(_figure_section(reports["fig6"]))
    parts.append(_figure_section(reports["fig4_5"]))
    parts.append(_figure_section(reports["table1"]))
    for name, (dt_table, rt_table) in _SWEEPS.items():
        parts.append(_sweep_section(reports[name], dt_table, rt_table))
    for name, table in _SINGLES.items():
        parts.append(_single_section(reports[name], table))
    parts.append("# Ablations (beyond the paper's tables)\n")
    for name in ("ablation_sigma", "ablation_sort", "ablation_container", "ablation_pivot"):
        parts.append(_figure_section(reports[name]))
    spotcheck = _load_spotcheck()
    if spotcheck:
        parts.append(spotcheck)
    return "\n".join(parts)


def _load_spotcheck() -> str | None:
    """Include the paper-scale spot check if its artefact file exists.

    ``fullscale_spotcheck.txt`` is produced by running the headline
    algorithms at the paper's true cardinality (UI 8-D, N = 100,000); it
    takes minutes, so it is regenerated manually rather than per report:

        python -c "from repro.bench.report import run_spotcheck; run_spotcheck()"
    """
    from pathlib import Path

    path = Path("fullscale_spotcheck.txt")
    if not path.exists():
        return None
    return (
        "# Appendix: paper-scale spot check (N = 100,000)\n\n"
        "Scaled sweeps above establish shape; this appendix runs the\n"
        "headline algorithms at the paper's actual 8-D/100K cardinality.\n"
        "Compare with Tables 12/13 at 100K: the paper reports SDI DT 70.9 →\n"
        "SDI-Subset 8.8 (×8.0) and SDI-Subset beating both BSkyTree\n"
        "variants on runtime — both relations hold below.\n\n"
        "```\n" + path.read_text().strip() + "\n```\n"
    )


def run_spotcheck(path: str = "fullscale_spotcheck.txt", n: int = 100_000) -> None:
    """Regenerate the paper-scale spot-check artefact (takes minutes)."""
    from repro import skyline
    from repro.data import generate
    from repro.obs.clock import timed
    from repro.stats.counters import DominanceCounter

    data = generate("UI", n=n, d=8, seed=0)
    lines = [f"paper-scale spot check: {data.describe()}"]
    for name in ("sdi", "sdi-subset", "salsa-subset", "bskytree-s", "bskytree-p"):
        counter = DominanceCounter()
        result, elapsed = timed(
            lambda: skyline(data, algorithm=name, counter=counter)
        )
        tallies = counter.as_dict()
        lines.append(
            f"{name:14s} skyline={result.size}  "
            f"DT={tallies['tests'] / n:10.2f}  "
            f"RT={elapsed:7.1f}s"
        )
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
