"""Sweep configuration shared by every experiment.

The paper's grids (200K points across 2-24 dimensions, 100K-1M points at
8-D) were measured in C++ on a 64-core Epyc; this pure-Python reproduction
runs the same grids *scaled* by default and full-size behind ``--full``.
Mean dominance-test numbers are hardware-independent, so scaled runs
reproduce the paper's DT shape; elapsed times reproduce the relative
ordering between algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

#: The paper's dimensionality grid (Tables 2/3, 6/7, 10/11).
PAPER_DIMS = (2, 4, 6, 8, 10, 12, 16, 20, 24)
#: The full paper grid is used at default scale too — the vectorised
#: kernels keep even 24-D AC affordable at scaled cardinality, and the
#: high-dimensionality columns carry the paper's most dramatic gains
#: (x30-48 at 20/24-D).
DEFAULT_DIMS = PAPER_DIMS
#: The paper's cardinality grid (Tables 4/5, 8/9, 12/13).
PAPER_CARDS = tuple(range(100_000, 1_000_001, 100_000))

DEFAULT_SCALE = 0.02
MIN_CARD = 200


@dataclass(frozen=True)
class SweepConfig:
    """Scaling knobs for one experiment run."""

    scale: float = DEFAULT_SCALE
    full: bool = False
    repeats: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.scale <= 1:
            raise InvalidParameterError(f"scale must be in (0, 1], got {self.scale}")
        if self.repeats < 1:
            raise InvalidParameterError(f"repeats must be >= 1, got {self.repeats}")

    @property
    def dims(self) -> tuple[int, ...]:
        """Dimensionality grid for dimension sweeps."""
        return PAPER_DIMS if self.full else DEFAULT_DIMS

    def card(self, paper_n: int) -> int:
        """Scale one of the paper's cardinalities (identity under ``full``)."""
        if self.full:
            return paper_n
        return max(MIN_CARD, int(paper_n * self.scale))

    @property
    def cardinalities(self) -> tuple[int, ...]:
        """Cardinality grid for cardinality sweeps."""
        return tuple(self.card(n) for n in PAPER_CARDS)
