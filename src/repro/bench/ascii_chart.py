"""Terminal-friendly charts for the paper's figures.

The paper's Figures 2 and 4–6 are plots, not tables; the experiment runner
reproduces their data exactly and these helpers render it as monospace
charts so the regenerated artefact *looks* like the figure: multi-series
line charts (Figures 4/5, one marker per algorithm, optional log y-axis)
and grouped bar charts (the Figure 2/6 subspace-size histograms).
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.errors import InvalidParameterError

_MARKERS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    title: str = "",
    height: int = 10,
    log_y: bool = False,
) -> str:
    """Render one or more equally-sampled series as an ASCII line chart.

    >>> print(line_chart({"a": [1, 3, 2]}, ["x", "y", "z"], height=3))
                 3 |   o
                 2 |      o
                 1 |o
                   +---------
                    x  y  z
                    o=a
    """
    if height < 2:
        raise InvalidParameterError(f"height must be >= 2, got {height}")
    if not series:
        raise InvalidParameterError("at least one series is required")
    for name, values in series.items():
        if len(values) != len(x_labels):
            raise InvalidParameterError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_labels)} x labels"
            )

    def transform(v: float) -> float:
        if not log_y:
            return float(v)
        return math.log10(max(float(v), 1e-12))

    flat = [transform(v) for values in series.values() for v in values]
    lo, hi = min(flat), max(flat)
    span = hi - lo if hi > lo else 1.0

    col_width = 3
    width = len(x_labels) * col_width
    grid = [[" "] * width for _ in range(height)]
    for (name, values), marker in zip(series.items(), _MARKERS):
        for idx, value in enumerate(values):
            row = height - 1 - round((transform(value) - lo) / span * (height - 1))
            col = idx * col_width
            cell = grid[row][col]
            grid[row][col] = marker if cell == " " else "*"

    def y_label(row: int) -> str:
        raw = hi - row / (height - 1) * span
        value = 10**raw if log_y else raw
        return f"{value:14.4g}"

    lines = []
    if title:
        lines.append(title)
    for row in range(height):
        lines.append(f"{y_label(row)} |" + "".join(grid[row]).rstrip())
    lines.append(" " * 15 + "+" + "-" * width)
    labels_line = "".join(label[:col_width].ljust(col_width) for label in x_labels)
    lines.append((" " * 16 + labels_line).rstrip())
    legend = "  ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * 16 + legend)
    return "\n".join(lines)


def bar_chart(
    series: Mapping[str, Sequence[int]],
    title: str = "",
    width: int = 40,
    log_x: bool = False,
) -> str:
    """Render per-bucket counts as horizontal bars, one block per series.

    >>> print(bar_chart({"AC": [4, 2]}, width=4))
    AC
      1 |#### 4
      2 |##   2
    """
    if width < 1:
        raise InvalidParameterError(f"width must be >= 1, got {width}")
    if not series:
        raise InvalidParameterError("at least one series is required")
    peak = max((max(values) if len(values) else 0) for values in series.values())
    peak = max(peak, 1)

    def bar_len(v: int) -> int:
        if v <= 0:
            return 0
        if log_x:
            return max(1, round(math.log10(v + 1) / math.log10(peak + 1) * width))
        return max(1, round(v / peak * width))

    lines = [title] if title else []
    for name, values in series.items():
        lines.append(name)
        for bucket, value in enumerate(values, start=1):
            bar = "#" * bar_len(int(value))
            lines.append(f"{bucket:3d} |{bar.ljust(width)} {int(value)}")
    return "\n".join(lines)
