"""Paper-style table formatting.

The evaluation tables all share one layout: one column per sweep value
(dimensionality, cardinality, or a single dataset), one row per algorithm,
and a "Performance Gain" row under each boosted algorithm showing the
unboosted/boosted ratio — or ``-`` when the boost does not help, exactly as
the paper prints it.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bench.runner import BOOSTED_PAIRS
from repro.stats.metrics import format_gain, performance_gain

#: data layout: data[algorithm][column_label] -> metric value
TableData = Mapping[str, Mapping[str, float]]


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:.1f}"
    if abs(value) >= 1:
        return f"{value:.4g}"
    return f"{value:.5f}"


def format_paper_table(
    title: str,
    column_header: str,
    columns: Sequence[str],
    data: TableData,
    row_order: Sequence[str],
) -> str:
    """Render one paper-style table as aligned monospace text."""
    base_of = {boosted: base for base, boosted in BOOSTED_PAIRS}
    rows: list[list[str]] = [[column_header, *columns]]
    for name in row_order:
        rows.append([name, *(_format_value(data[name][col]) for col in columns)])
        base = base_of.get(name)
        if base is not None and base in data:
            # The paper prints the gain row right under each boosted row.
            rows.append(
                [
                    "Performance Gain",
                    *(
                        format_gain(performance_gain(data[base][col], data[name][col]))
                        for col in columns
                    ),
                ]
            )
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    lines = [title, "=" * len(title)]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_histogram_table(
    title: str,
    series: Mapping[str, Sequence[int]],
    bucket_header: str = "subspace size",
) -> str:
    """Render Figure-2/6-style distributions: one row per series (AC/CO/UI)."""
    n_buckets = max(len(values) for values in series.values())
    header = [bucket_header, *(str(i) for i in range(1, n_buckets + 1))]
    rows = [header]
    for label, values in series.items():
        padded = list(values) + [0] * (n_buckets - len(values))
        rows.append([label, *(str(int(v)) for v in padded)])
    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = [title, "=" * len(title)]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
