"""Mergeable log-bucketed histograms for tail-latency accounting.

The bench tables report means, but a serving-grade deployment (ROADMAP's
``repro.serve``) is judged on its tails: p99 wall time, worst-case charged
dominance tests, skyline-size blowups.  :class:`LogHistogram` records a
stream of non-negative samples into geometrically spaced buckets so that

- quantile estimates carry a *bounded relative error* (one bucket width,
  i.e. a factor of :attr:`LogHistogram.growth`) at O(buckets) memory,
- two histograms over disjoint sample sets **merge losslessly**: buckets
  align exactly when ``growth`` and ``min_value`` agree, so the merge of
  per-block worker histograms equals the histogram of the concatenated
  samples, bucket for bucket (the property the parallel map phase relies
  on), and
- the whole state round-trips through plain JSON (:meth:`to_dict` /
  :meth:`from_dict`) for cross-process transport and metric exposition.

Bucket layout: bucket ``0`` is ``(0, min_value]``; bucket ``i >= 1`` is
``(min_value * growth**(i-1), min_value * growth**i]``.  Zero and negative
samples land in a dedicated zero bucket (they order before everything).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

from repro.errors import InvalidParameterError

__all__ = ["LogHistogram"]

#: Default bucket growth: four buckets per doubling — a quantile estimate
#: is within ~19% relative error of the exact order statistic.
_DEFAULT_GROWTH = 2.0 ** 0.25

#: Default resolution floor: samples at or below this value share bucket 0.
#: 1 µs is far below every wall time the stack can measure meaningfully.
_DEFAULT_MIN_VALUE = 1e-6


class LogHistogram:
    """Counts of samples in geometric buckets, with quantile estimation.

    >>> histogram = LogHistogram()
    >>> for value in (0.01, 0.02, 0.04, 0.08, 0.8):
    ...     histogram.add(value)
    >>> histogram.count
    5
    >>> 0.03 <= histogram.quantile(0.5) <= 0.05
    True
    """

    __slots__ = ("growth", "min_value", "_buckets", "_zero", "count", "total", "_min", "_max")

    def __init__(
        self,
        growth: float = _DEFAULT_GROWTH,
        min_value: float = _DEFAULT_MIN_VALUE,
    ) -> None:
        if growth <= 1.0:
            raise InvalidParameterError(f"growth must be > 1, got {growth}")
        if min_value <= 0.0:
            raise InvalidParameterError(f"min_value must be > 0, got {min_value}")
        self.growth = float(growth)
        self.min_value = float(min_value)
        self._buckets: dict[int, int] = {}
        self._zero = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ----------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """The bucket holding ``value`` (``-1`` for the zero bucket)."""
        if value <= 0.0:
            return -1
        if value <= self.min_value:
            return 0
        return 1 + int(
            math.floor(math.log(value / self.min_value) / math.log(self.growth))
        )

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """The ``(low, high]`` value range of bucket ``index``."""
        if index < 0:
            return (0.0, 0.0)
        if index == 0:
            return (0.0, self.min_value)
        return (
            self.min_value * self.growth ** (index - 1),
            self.min_value * self.growth ** index,
        )

    def add(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self._zero += 1
            return
        index = self.bucket_index(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def add_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples."""
        for value in values:
            self.add(value)

    def merge(self, other: "LogHistogram") -> None:
        """Absorb ``other``'s samples — lossless when layouts match.

        Raises :class:`InvalidParameterError` when ``growth`` or
        ``min_value`` differ: misaligned buckets cannot merge without
        resampling, and silent approximation would break the
        per-block-equals-concatenated invariant the worker pool asserts.
        """
        if (other.growth, other.min_value) != (self.growth, self.min_value):
            raise InvalidParameterError(
                "cannot merge histograms with different bucket layouts: "
                f"growth {self.growth} vs {other.growth}, "
                f"min_value {self.min_value} vs {other.min_value}"
            )
        for index, bucket_count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + bucket_count
        self._zero += other._zero
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # -- reading ------------------------------------------------------------

    @property
    def min(self) -> float:
        """Smallest recorded sample (``0.0`` when empty)."""
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        """Largest recorded sample (``0.0`` when empty)."""
        return self._max if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) of the recorded samples.

        Returns the geometric midpoint of the bucket containing the
        order statistic of rank ``ceil(q * count)``, clamped to the
        observed ``[min, max]`` — so the estimate always lies in the same
        bucket as the exact sample (the contract the oracle test checks).
        Empty histograms return ``0.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = min(self.count - 1, max(0, math.ceil(q * self.count) - 1))
        if rank < self._zero:
            return max(0.0, self._min)
        seen = self._zero
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank < seen:
                low, high = self.bucket_bounds(index)
                estimate = math.sqrt(low * high) if low > 0.0 else high / 2.0
                return min(self._max, max(self._min, estimate))
        return self._max

    def summary(self) -> dict[str, float]:
        """Count, sum, min/max and the p50/p90/p99 estimates, as one dict."""
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, bounds ascending.

        The zero bucket (samples ``<= 0``) surfaces under upper bound
        ``0.0``; the list covers every sample, so the last cumulative count
        equals :attr:`count`.  This is exactly the shape a Prometheus
        ``_bucket{le=...}`` series wants.
        """
        pairs: list[tuple[float, int]] = []
        running = 0
        if self._zero:
            running += self._zero
            pairs.append((0.0, running))
        for index in sorted(self._buckets):
            running += self._buckets[index]
            pairs.append((self.bucket_bounds(index)[1], running))
        return pairs

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-safe full state; :meth:`from_dict` round-trips it exactly."""
        return {
            "growth": self.growth,
            "min_value": self.min_value,
            "count": self.count,
            "total": self.total,
            "zero": self._zero,
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
            "buckets": {str(index): count for index, count in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "LogHistogram":
        """Rebuild a histogram from :meth:`to_dict` output."""
        histogram = cls(
            growth=float(payload["growth"]),  # type: ignore[arg-type]
            min_value=float(payload["min_value"]),  # type: ignore[arg-type]
        )
        buckets = payload.get("buckets") or {}
        if not isinstance(buckets, Mapping):
            raise InvalidParameterError("histogram 'buckets' must be a mapping")
        histogram._buckets = {int(key): int(value) for key, value in buckets.items()}
        histogram._zero = int(payload.get("zero", 0))  # type: ignore[arg-type]
        histogram.count = int(payload.get("count", 0))  # type: ignore[arg-type]
        histogram.total = float(payload.get("total", 0.0))  # type: ignore[arg-type]
        low, high = payload.get("min"), payload.get("max")
        histogram._min = float(low) if low is not None else math.inf  # type: ignore[arg-type]
        histogram._max = float(high) if high is not None else -math.inf  # type: ignore[arg-type]
        return histogram

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"LogHistogram(count={self.count}, buckets={len(self._buckets)}, "
            f"p50={self.quantile(0.5):.4g})"
        )
