"""Hierarchical span tracing for the skyline stack.

One :class:`Tracer` collects a tree of :class:`Span` records — name,
attributes, start offset, wall/CPU duration, and the
:class:`~repro.stats.counters.DominanceCounter` delta between span entry
and exit — so a run can be decomposed into the paper's phases (Merge,
sort, scan, index traversal) after the fact.  The default is the
:data:`NULL_TRACER` singleton: every method is a no-op, ``span()`` returns
one shared context manager, and hot-path call sites gate their
per-event work on :attr:`Tracer.enabled`, so the disabled path performs no
per-event allocation and results stay bit-identical with tracing on or
off (tracing reads counters at boundaries; it never writes them).

The *current* tracer is ambient (a :mod:`contextvars` variable) so deep
layers — ``core.merge``, ``core.boost``, ``core.subset_index``,
``extensions.parallel`` — can emit spans without threading a tracer
parameter through every signature.  :class:`~repro.engine.SkylineEngine`
activates its context's tracer around each run; code running outside an
activation sees the null tracer and pays nothing.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from time import perf_counter, process_time
from typing import TYPE_CHECKING, Iterator, Union

if TYPE_CHECKING:
    from repro.stats.counters import DominanceCounter

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "PhaseStats",
    "Span",
    "Trace",
    "Tracer",
    "TracerLike",
    "aggregate_phases",
    "current_tracer",
]


@dataclass
class Span:
    """One traced phase: name, attributes, timing and counter delta.

    Attributes
    ----------
    name:
        Phase name (``"merge"``, ``"sort"``, ``"scan"``, ...).
    attrs:
        Caller-supplied key/value annotations (σ, host name, point counts).
    start_s:
        Wall-clock offset of span entry, relative to the tracer's origin.
    wall_s, cpu_s:
        Wall and process-CPU duration of the span.
    counter_delta:
        Non-zero differences of the bound counter's
        :meth:`~repro.stats.counters.DominanceCounter.as_dict` between span
        exit and entry — e.g. ``{"tests": 512.0}`` is the dominance tests
        *charged inside this phase*.
    children:
        Nested spans, in completion order.
    """

    name: str
    attrs: dict[str, object] = field(default_factory=dict)
    start_s: float = 0.0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    counter_delta: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def set(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on an open or closed span."""
        self.attrs.update(attrs)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first ``(depth, span)`` pairs over this span and descendants."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


@dataclass
class Trace:
    """The completed span forest of one run (see :meth:`Tracer.drain`)."""

    roots: list[Span]

    def walk(self) -> Iterator[tuple[int, Span]]:
        """Depth-first ``(depth, span)`` pairs over every root."""
        for root in self.roots:
            yield from root.walk()

    def spans(self) -> Iterator[Span]:
        """Every span, depth-first."""
        for _depth, span in self.walk():
            yield span

    def find(self, name: str) -> list[Span]:
        """All spans named ``name``, depth-first order."""
        return [span for span in self.spans() if span.name == name]

    @property
    def wall_s(self) -> float:
        """Total wall time of the root spans."""
        return sum(root.wall_s for root in self.roots)


class _OpenSpan:
    """Context manager driving one span's entry/exit bookkeeping."""

    __slots__ = ("_tracer", "span", "_counter", "_before", "_t0", "_c0")

    def __init__(
        self,
        tracer: "Tracer",
        span: Span,
        counter: "DominanceCounter | None",
    ) -> None:
        self._tracer = tracer
        self.span = span
        self._counter = counter
        self._before: dict[str, float] | None = None
        self._t0 = 0.0
        self._c0 = 0.0

    def __enter__(self) -> Span:
        self._tracer._stack.append(self.span)
        if self._counter is not None:
            self._before = self._counter.as_dict()
        self._c0 = process_time()
        self._t0 = perf_counter()
        self.span.start_s = self._t0 - self._tracer._origin
        return self.span

    def __exit__(self, *exc: object) -> None:
        wall = perf_counter() - self._t0
        cpu = process_time() - self._c0
        span = self.span
        span.wall_s = wall
        span.cpu_s = cpu
        if self._counter is not None and self._before is not None:
            before = self._before
            span.counter_delta = {
                key: value - before.get(key, 0.0)
                for key, value in self._counter.as_dict().items()
                if value != before.get(key, 0.0)
            }
        stack = self._tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        self._tracer._attach(span)


class Tracer:
    """Collects nested spans; one instance per traced session.

    >>> from repro.stats.counters import DominanceCounter
    >>> tracer = Tracer()
    >>> counter = DominanceCounter()
    >>> with tracer.span("execute", counter=counter) as outer:
    ...     with tracer.span("merge", sigma=2):
    ...         counter.add(5)
    >>> trace = tracer.drain()
    >>> [span.name for span in trace.spans()]
    ['execute', 'merge']
    >>> trace.roots[0].counter_delta
    {'tests': 5.0}
    """

    enabled: bool = True

    def __init__(self) -> None:
        self._origin = perf_counter()
        self._roots: list[Span] = []
        self._stack: list[Span] = []

    def span(
        self,
        name: str,
        counter: "DominanceCounter | None" = None,
        **attrs: object,
    ) -> _OpenSpan:
        """A context manager opening a nested span named ``name``.

        ``counter`` (when given) is snapshotted at entry and exit; the
        non-zero differences land in :attr:`Span.counter_delta`.  Keyword
        arguments become the span's initial attributes; the yielded
        :class:`Span` accepts more via :meth:`Span.set`.
        """
        return _OpenSpan(self, Span(name=name, attrs=dict(attrs)), counter)

    def record(self, name: str, wall_s: float, **attrs: object) -> None:
        """Append an already-measured span (no context-manager overhead).

        Used by sampled hot-path instrumentation (subset-index queries,
        Merge rounds) where opening a context manager per event would
        distort the numbers being measured.
        """
        span = Span(
            name=name,
            attrs=dict(attrs),
            start_s=perf_counter() - self._origin - wall_s,
            wall_s=wall_s,
        )
        self._attach(span)

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Install this tracer as the ambient :func:`current_tracer`."""
        token = _CURRENT.set(self)
        try:
            yield self
        finally:
            _CURRENT.reset(token)

    def drain(self) -> Trace:
        """Detach the completed root spans as a :class:`Trace` and reset.

        Open spans stay on the stack, so a long-lived tracer can be
        drained per run (the engine drains after every ``execute``).
        """
        roots = self._roots
        self._roots = []
        return Trace(roots=roots)

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self._roots)}, open={len(self._stack)})"


class _NullSpan:
    """The shared no-op span/context manager of the null tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attrs: object) -> None:
        """No-op."""


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    ``span()`` returns one process-wide shared context manager and
    ``record()`` does nothing, so the disabled path performs no per-event
    allocation.  Hot loops additionally gate their instrumentation on
    :attr:`enabled` (``False`` here), paying a single integer check per
    event.
    """

    enabled: bool = False

    __slots__ = ()

    def span(
        self,
        name: str,
        counter: "DominanceCounter | None" = None,
        **attrs: object,
    ) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, wall_s: float, **attrs: object) -> None:
        return None

    def activate(self) -> _NullSpan:
        return _NULL_SPAN

    def drain(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


#: The process-wide disabled tracer; also the default ambient tracer.
NULL_TRACER = NullTracer()

TracerLike = Union[Tracer, NullTracer]

_CURRENT: ContextVar[TracerLike] = ContextVar("repro_obs_tracer", default=NULL_TRACER)


def current_tracer() -> TracerLike:
    """The ambient tracer: the innermost :meth:`Tracer.activate`, else
    :data:`NULL_TRACER`."""
    return _CURRENT.get()


@dataclass(frozen=True)
class PhaseStats:
    """Aggregated statistics of every span sharing one phase path.

    Sibling spans with the same name (e.g. 23 ``merge.round`` records, 10
    ``repeat`` spans) collapse into one row: ``calls`` counts them,
    ``wall_s``/``cpu_s``/``counter_delta`` sum over them.
    """

    path: tuple[str, ...]
    calls: int
    wall_s: float
    cpu_s: float
    counter_delta: dict[str, float]

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    @property
    def dominance_tests(self) -> float:
        """The dominance tests charged inside this phase (``ΔDT``)."""
        return self.counter_delta.get("tests", 0.0)


def aggregate_phases(trace: Trace) -> list[PhaseStats]:
    """Collapse a trace into per-phase-path rows, first-visit order.

    Shared by :meth:`~repro.obs.metrics.MetricsRegistry.record_trace` and
    :func:`~repro.obs.export.phase_table` so the metrics dump and the
    ASCII table always agree on phase naming.
    """
    order: list[tuple[str, ...]] = []
    rows: dict[tuple[str, ...], dict[str, object]] = {}

    def visit(span: Span, prefix: tuple[str, ...]) -> None:
        path = (*prefix, span.name)
        row = rows.get(path)
        if row is None:
            row = {"calls": 0, "wall_s": 0.0, "cpu_s": 0.0, "delta": {}}
            rows[path] = row
            order.append(path)
        row["calls"] = int(row["calls"]) + 1  # type: ignore[call-overload]
        row["wall_s"] = float(row["wall_s"]) + span.wall_s  # type: ignore[arg-type]
        row["cpu_s"] = float(row["cpu_s"]) + span.cpu_s  # type: ignore[arg-type]
        delta: dict[str, float] = row["delta"]  # type: ignore[assignment]
        for key, value in span.counter_delta.items():
            delta[key] = delta.get(key, 0.0) + value
        for child in span.children:
            visit(child, path)

    for root in trace.roots:
        visit(root, ())
    return [
        PhaseStats(
            path=path,
            calls=int(rows[path]["calls"]),  # type: ignore[call-overload]
            wall_s=float(rows[path]["wall_s"]),  # type: ignore[arg-type]
            cpu_s=float(rows[path]["cpu_s"]),  # type: ignore[arg-type]
            counter_delta=dict(rows[path]["delta"]),  # type: ignore[call-overload]
        )
        for path in order
    ]
