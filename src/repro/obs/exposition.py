"""Prometheus text-format exposition for metrics and histograms.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` dump (flat
``dict[str, float]``) and any :class:`~repro.obs.histogram.LogHistogram`
objects into the Prometheus `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ — the
lingua franca of scrape endpoints — without importing any client library:
the format is plain text, and keeping the exporter dependency-free matches
the repo's no-new-deps constraint.

Scalar metrics become gauges (the registry is last-write-wins, not
monotone, so ``counter`` would be a lie for repeated dumps); histograms
become native Prometheus histograms with cumulative ``_bucket{le=...}``
series plus ``_sum`` and ``_count``.  Dotted registry keys are sanitised
to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` metric-name grammar.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Mapping

from repro.obs.histogram import LogHistogram

__all__ = ["prometheus_name", "to_prometheus", "write_prometheus"]

#: Default metric-name prefix, namespacing the stack's metrics on shared
#: Prometheus servers.
_DEFAULT_PREFIX = "repro_"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = _DEFAULT_PREFIX) -> str:
    """``name`` mapped onto the Prometheus metric-name grammar.

    Invalid characters (dots, dashes, spaces) become underscores; a
    leading digit gets an underscore prefix.

    >>> prometheus_name("counter.index_cache_hit_rate")
    'repro_counter_index_cache_hit_rate'
    """
    sanitised = _INVALID.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return prefix + sanitised


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


def to_prometheus(
    metrics: Mapping[str, float],
    histograms: Mapping[str, LogHistogram] | None = None,
    prefix: str = _DEFAULT_PREFIX,
) -> str:
    """The metrics (and histograms) as one Prometheus text document.

    Keys are emitted sorted so the output is stable; every metric gets a
    ``# TYPE`` line, histograms additionally a cumulative bucket series
    ending in the mandatory ``le="+Inf"`` bucket equal to ``_count``.
    """
    lines: list[str] = []
    for key, value in sorted(metrics.items()):
        name = prometheus_name(key, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(float(value))}")
    for key, histogram in sorted((histograms or {}).items()):
        name = prometheus_name(key, prefix)
        lines.append(f"# TYPE {name} histogram")
        for upper, cumulative in histogram.cumulative():
            lines.append(
                f'{name}_bucket{{le="{_format_value(upper)}"}} {cumulative}'
            )
        lines.append(f'{name}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{name}_sum {_format_value(histogram.total)}")
        lines.append(f"{name}_count {histogram.count}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(
    path: str | Path,
    metrics: Mapping[str, float],
    histograms: Mapping[str, LogHistogram] | None = None,
    prefix: str = _DEFAULT_PREFIX,
) -> Path:
    """Write :func:`to_prometheus` output to ``path``; returns it."""
    target = Path(path)
    target.write_text(to_prometheus(metrics, histograms, prefix), encoding="utf-8")
    return target
