"""``repro.obs`` — phase-level observability for the skyline stack.

The paper's evaluation (Section 6) reasons in *phases*: Merge preprocessing
cost, sort cost, scan-time dominance tests, subset-index traversal work.
This package makes those phases observable at runtime without perturbing
the numbers being observed:

- :mod:`repro.obs.trace` — a hierarchical span :class:`Tracer` (plus the
  allocation-free :class:`NullTracer` default) producing nested spans with
  wall/CPU time and :class:`~repro.stats.counters.DominanceCounter` deltas
  captured at span boundaries;
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` flattening counter
  tallies, cache hit rates, worker-pool reuse stats and per-phase timings
  into one ``dict[str, float]``;
- :mod:`repro.obs.export` — Chrome trace-event JSON
  (``chrome://tracing``-loadable), plain-JSON metrics dumps and an ASCII
  phase-breakdown table;
- :mod:`repro.obs.clock` — the sanctioned raw-clock call sites (lint rule
  RPR006 forbids ``time.perf_counter()`` elsewhere).

Tracing is observation-only by contract: with tracing on or off, skyline
ids and charged dominance tests are bit-identical (enforced by the
``--strict`` analysis gate and ``tests/obs/test_overhead.py``).
"""

from __future__ import annotations

from repro.obs.clock import Stopwatch, timed
from repro.obs.export import (
    phase_table,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    PhaseStats,
    Span,
    Trace,
    Tracer,
    TracerLike,
    aggregate_phases,
    current_tracer,
)

__all__ = [
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PhaseStats",
    "Span",
    "Stopwatch",
    "Trace",
    "Tracer",
    "TracerLike",
    "aggregate_phases",
    "current_tracer",
    "phase_table",
    "timed",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
]
