"""``repro.obs`` — phase-level observability for the skyline stack.

The paper's evaluation (Section 6) reasons in *phases*: Merge preprocessing
cost, sort cost, scan-time dominance tests, subset-index traversal work.
This package makes those phases observable at runtime without perturbing
the numbers being observed:

- :mod:`repro.obs.trace` — a hierarchical span :class:`Tracer` (plus the
  allocation-free :class:`NullTracer` default) producing nested spans with
  wall/CPU time and :class:`~repro.stats.counters.DominanceCounter` deltas
  captured at span boundaries;
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` flattening counter
  tallies, cache hit rates, worker-pool reuse stats and per-phase timings
  into one ``dict[str, float]``;
- :mod:`repro.obs.histogram` — mergeable log-bucketed
  :class:`LogHistogram` for tail-latency quantiles (p50/p90/p99) over
  wall time, charged dominance tests and skyline sizes;
- :mod:`repro.obs.events` — a ring-buffered structured :class:`EventLog`
  (plus the allocation-free :class:`NullEventLog` default) recording
  query/plan/cache/delta/pool lifecycle events as JSONL, with a
  threshold-based slow-query side ring;
- :mod:`repro.obs.export` — Chrome trace-event JSON
  (``chrome://tracing``-loadable), plain-JSON metrics dumps and an ASCII
  phase-breakdown table;
- :mod:`repro.obs.exposition` — Prometheus text-format exposition of
  metrics gauges and histogram bucket series;
- :mod:`repro.obs.regress` — the noise-tolerant bench-trajectory
  regression gate behind ``make bench-check``;
- :mod:`repro.obs.clock` — the sanctioned raw-clock call sites (lint rule
  RPR006 forbids ``time.perf_counter()`` elsewhere).

Tracing is observation-only by contract: with tracing on or off, skyline
ids and charged dominance tests are bit-identical (enforced by the
``--strict`` analysis gate and ``tests/obs/test_overhead.py``).
"""

from __future__ import annotations

from repro.obs.clock import Stopwatch, timed
from repro.obs.events import (
    NULL_EVENT_LOG,
    Event,
    EventLog,
    EventLogLike,
    NullEventLog,
    current_event_log,
)
from repro.obs.export import (
    phase_table,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics,
)
from repro.obs.exposition import (
    prometheus_name,
    to_prometheus,
    write_prometheus,
)
from repro.obs.histogram import LogHistogram
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    PhaseStats,
    Span,
    Trace,
    Tracer,
    TracerLike,
    aggregate_phases,
    current_tracer,
)

__all__ = [
    "Event",
    "EventLog",
    "EventLogLike",
    "LogHistogram",
    "MetricsRegistry",
    "NULL_EVENT_LOG",
    "NULL_TRACER",
    "NullEventLog",
    "NullTracer",
    "PhaseStats",
    "Span",
    "Stopwatch",
    "Trace",
    "Tracer",
    "TracerLike",
    "aggregate_phases",
    "current_event_log",
    "current_tracer",
    "phase_table",
    "prometheus_name",
    "timed",
    "to_chrome_trace",
    "to_prometheus",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
    "write_prometheus",
]
