"""Ring-buffered structured event log with a slow-query side channel.

Traces answer "where did this run spend its time"; the event log answers
"what happened to this session, in order": query start/finish, the plan
the planner chose, cache invalidations, delta repairs, worker-pool
dispatches.  Events are small structured records (name + flat fields +
wall-clock offset) held in a bounded ring buffer, exportable as JSONL —
one ``json.loads``-able object per line — for ingestion by log pipelines.

Queries whose ``query.finish`` event reports a wall time at or above the
configured threshold are additionally retained in a separate slow-query
ring, so a long session keeps its pathological tail even after the main
ring has rotated.

The *current* event log is ambient (a :mod:`contextvars` variable),
mirroring :func:`repro.obs.trace.current_tracer`: deep layers —
:meth:`PreparedDataset.invalidate`, the worker pool's dispatch — emit
without threading a log through every signature, and code running outside
an activation sees :data:`NULL_EVENT_LOG`, whose :meth:`emit` is a no-op
(call sites gate field construction on :attr:`EventLog.enabled`, so the
disabled path performs no per-event allocation).
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Iterator, Mapping, Union

from repro.errors import InvalidParameterError

__all__ = [
    "Event",
    "EventLog",
    "EventLogLike",
    "NULL_EVENT_LOG",
    "NullEventLog",
    "current_event_log",
]

#: Events retained in the main ring before the oldest rotates out.
_DEFAULT_CAPACITY = 1024

#: Slow queries retained; sized smaller — they should be rare.
_DEFAULT_SLOW_CAPACITY = 128


@dataclass(frozen=True)
class Event:
    """One structured event: name, flat fields, session-relative time."""

    ts_s: float
    name: str
    fields: Mapping[str, object]

    def to_json(self) -> str:
        """The event as one JSONL line (non-JSON field values stringified)."""
        payload: dict[str, object] = {
            "ts_s": round(self.ts_s, 6),
            "event": self.name,
        }
        payload.update(self.fields)
        return json.dumps(payload, default=str)


class EventLog:
    """A bounded, ordered record of session events.

    Parameters
    ----------
    capacity:
        Main ring size; the oldest event rotates out beyond it.
    slow_query_s:
        Wall-time threshold (seconds): a ``query.finish`` event whose
        ``wall_s`` field is at or above it is also kept in the slow-query
        ring.  ``None`` disables the side channel.
    slow_capacity:
        Slow-query ring size.

    >>> log = EventLog(slow_query_s=0.5)
    >>> _ = log.emit("query.start", n=100)
    >>> _ = log.emit("query.finish", wall_s=0.75)
    >>> [event.name for event in log.slow_queries()]
    ['query.finish']
    """

    enabled: bool = True

    def __init__(
        self,
        capacity: int = _DEFAULT_CAPACITY,
        slow_query_s: float | None = None,
        slow_capacity: int = _DEFAULT_SLOW_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        if slow_query_s is not None and slow_query_s < 0:
            raise InvalidParameterError(
                f"slow_query_s must be >= 0, got {slow_query_s}"
            )
        self.slow_query_s = slow_query_s
        self._origin = perf_counter()
        self._events: deque[Event] = deque(maxlen=capacity)
        self._slow: deque[Event] = deque(maxlen=max(1, slow_capacity))
        self.emitted = 0

    def emit(self, name: str, **fields: object) -> Event:
        """Record one event; returns it (mainly for tests)."""
        event = Event(ts_s=perf_counter() - self._origin, name=name, fields=fields)
        self._events.append(event)
        self.emitted += 1
        if (
            self.slow_query_s is not None
            and name == "query.finish"
            and float(fields.get("wall_s", 0.0)) >= self.slow_query_s  # type: ignore[arg-type]
        ):
            self._slow.append(event)
        return event

    def events(self) -> list[Event]:
        """The retained events, oldest first."""
        return list(self._events)

    def slow_queries(self) -> list[Event]:
        """The retained slow ``query.finish`` events, oldest first."""
        return list(self._slow)

    def to_jsonl(self) -> str:
        """Retained events as JSONL (one object per line; '' when empty)."""
        if not self._events:
            return ""
        return "\n".join(event.to_json() for event in self._events) + "\n"

    def write_jsonl(self, path: str | Path) -> Path:
        """Write :meth:`to_jsonl` output to ``path``; returns it."""
        target = Path(path)
        target.write_text(self.to_jsonl(), encoding="utf-8")
        return target

    @contextmanager
    def activate(self) -> Iterator["EventLog"]:
        """Install this log as the ambient :func:`current_event_log`."""
        token = _CURRENT.set(self)
        try:
            yield self
        finally:
            _CURRENT.reset(token)

    def __len__(self) -> int:
        return len(self._events)

    def __repr__(self) -> str:
        return f"EventLog(events={len(self._events)}, emitted={self.emitted})"


class _NullActivation:
    """Shared no-op context manager of the null event log."""

    __slots__ = ()

    def __enter__(self) -> "_NullActivation":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_ACTIVATION = _NullActivation()


class NullEventLog:
    """The disabled event log: every operation is a no-op.

    ``activate()`` returns one process-wide shared context manager and
    ``emit()`` returns ``None`` without recording, so the disabled path
    performs no per-event allocation — call sites additionally gate their
    field construction on :attr:`enabled` (``False`` here).
    """

    enabled: bool = False

    __slots__ = ()

    def emit(self, name: str, **fields: object) -> None:
        return None

    def events(self) -> list[Event]:
        return []

    def slow_queries(self) -> list[Event]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def activate(self) -> _NullActivation:
        return _NULL_ACTIVATION

    def __repr__(self) -> str:
        return "NullEventLog()"


#: The process-wide disabled log; also the default ambient event log.
NULL_EVENT_LOG = NullEventLog()

EventLogLike = Union[EventLog, NullEventLog]

_CURRENT: ContextVar[EventLogLike] = ContextVar(
    "repro_obs_event_log", default=NULL_EVENT_LOG
)


def current_event_log() -> EventLogLike:
    """The ambient event log: the innermost :meth:`EventLog.activate`,
    else :data:`NULL_EVENT_LOG`."""
    return _CURRENT.get()
