"""Shared timing primitives — the sanctioned raw-clock call sites.

Lint rule RPR006 forbids ``time.perf_counter()`` outside ``repro.obs`` and
``algorithms/base.py`` so every measurement flows through one definition of
"elapsed": :func:`timed` for one-shot bodies (``run_timed``, the bench
runner's cold/warm repeats) and :class:`Stopwatch` for incremental laps
(the Merge loop's per-round phase records).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import TypeVar

__all__ = ["Stopwatch", "timed"]

_T = TypeVar("_T")


def timed(body: Callable[[], _T]) -> tuple[_T, float]:
    """Run ``body`` and return ``(result, elapsed_wall_seconds)``.

    The single definition of a timed run shared by
    :func:`~repro.algorithms.base.run_timed` and the benchmark runners, so
    cold/warm timing semantics live in one place: the clock starts
    immediately before the body and stops immediately after — setup
    (engine construction, dataset generation) is never inside the window.

    >>> value, elapsed = timed(lambda: 2 + 2)
    >>> value, elapsed >= 0.0
    (4, True)
    """
    started = time.perf_counter()
    result = body()
    return result, time.perf_counter() - started


class Stopwatch:
    """An incremental wall-clock: :meth:`lap` returns-and-restarts.

    Used for attributing consecutive segments of one loop (e.g. Merge's
    pivot rounds) without re-entering a context manager per segment.

    >>> watch = Stopwatch()
    >>> watch.lap() >= 0.0 and watch.elapsed() >= 0.0
    True
    """

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = time.perf_counter()

    def lap(self) -> float:
        """Seconds since construction or the previous lap; restarts the clock."""
        now = time.perf_counter()
        elapsed = now - self._started
        self._started = now
        return elapsed

    def elapsed(self) -> float:
        """Seconds since construction or the previous lap (clock keeps running)."""
        return time.perf_counter() - self._started

    def restart(self) -> None:
        """Restart the clock without reading it."""
        self._started = time.perf_counter()
