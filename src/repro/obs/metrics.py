"""A flat metrics registry for one run or session.

Everything the stack already measures — :class:`DominanceCounter` tallies,
memoized-index and prepared-cache hit/miss counts, worker-pool reuse
stats, per-phase wall/CPU time from a :class:`~repro.obs.trace.Trace` —
lands in one ``dict[str, float]`` with dotted, sorted keys, ready for a
JSON dump (:func:`~repro.obs.export.write_metrics`) or a scrape.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.obs.trace import Trace, aggregate_phases

if TYPE_CHECKING:
    from repro.engine.analyze import PlanAnalysis
    from repro.obs.histogram import LogHistogram
    from repro.stats.counters import DominanceCounter

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Accumulates named float metrics; last write per key wins.

    >>> from repro.stats.counters import DominanceCounter
    >>> registry = MetricsRegistry()
    >>> counter = DominanceCounter(tests=7)
    >>> registry.record_counter(counter)
    >>> registry.record("run.elapsed_s", 0.25)
    >>> registry.as_dict()["counter.tests"]
    7.0
    """

    def __init__(self) -> None:
        self._values: dict[str, float] = {}

    def record(self, name: str, value: float) -> None:
        """Set one metric (overwrites a previous value for the key)."""
        self._values[name] = float(value)

    def record_many(self, values: Mapping[str, float], prefix: str = "") -> None:
        """Set a batch of metrics, optionally under a dotted prefix."""
        for key, value in values.items():
            self._values[f"{prefix}{key}"] = float(value)

    def record_counter(
        self, counter: "DominanceCounter", prefix: str = "counter."
    ) -> None:
        """Snapshot a :class:`DominanceCounter` under ``counter.*`` keys.

        Includes derived hit rates (``counter.index_cache_hit_rate``,
        ``counter.prepared_cache_hit_rate``) when the underlying lookups
        are non-zero, so dashboards need no post-processing.
        """
        tallies = counter.as_dict()
        self.record_many(tallies, prefix=prefix)
        index_lookups = tallies["index_cache_hits"] + tallies["index_cache_misses"]
        if index_lookups:
            self._values[f"{prefix}index_cache_hit_rate"] = (
                tallies["index_cache_hits"] / index_lookups
            )
        prepared_lookups = (
            tallies["prepared_cache_hits"] + tallies["prepared_cache_misses"]
        )
        if prepared_lookups:
            self._values[f"{prefix}prepared_cache_hit_rate"] = (
                tallies["prepared_cache_hits"] / prepared_lookups
            )

    def record_pool(self, stats: Mapping[str, int], prefix: str = "pool.") -> None:
        """Snapshot worker-pool reuse stats (see ``SkylineWorkerPool.stats``)."""
        self.record_many({key: float(value) for key, value in stats.items()}, prefix)

    def record_histogram(
        self, name: str, histogram: "LogHistogram", prefix: str = "hist."
    ) -> None:
        """Flatten a :class:`LogHistogram`'s summary into metrics.

        ``hist.<name>.count`` / ``.sum`` / ``.min`` / ``.max`` and the
        ``.p50`` / ``.p90`` / ``.p99`` quantile estimates — the flat-dump
        view; the full bucket detail stays on the histogram object (the
        Prometheus exporter renders it natively).
        """
        self.record_many(histogram.summary(), prefix=f"{prefix}{name}.")

    def record_analysis(
        self, analysis: "PlanAnalysis", prefix: str = "planner."
    ) -> None:
        """Record an EXPLAIN ANALYZE report's misestimation ratios.

        One ``planner.<metric>_ratio`` entry per estimate-vs-actual row
        (``actual / estimated``; 1.0 means the cost model was exact), so
        planner accuracy is trackable alongside ordinary run metrics.
        """
        self.record_many(analysis.accuracy_metrics(prefix=prefix))

    def record_trace(self, trace: Trace, prefix: str = "phase.") -> None:
        """Flatten a trace's per-phase aggregates into metrics.

        Each phase path (e.g. ``execute/merge``) contributes
        ``phase.execute.merge.wall_s`` / ``.cpu_s`` / ``.calls`` and, when
        the phase charged dominance tests, ``.dominance_tests``.
        """
        for phase in aggregate_phases(trace):
            key = prefix + ".".join(phase.path)
            self._values[f"{key}.wall_s"] = phase.wall_s
            self._values[f"{key}.cpu_s"] = phase.cpu_s
            self._values[f"{key}.calls"] = float(phase.calls)
            if phase.dominance_tests:
                self._values[f"{key}.dominance_tests"] = phase.dominance_tests

    def as_dict(self) -> dict[str, float]:
        """All metrics, keys sorted — the stable export form."""
        return {key: self._values[key] for key in sorted(self._values)}

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._values)} metrics)"
