"""Exporters: Chrome trace-event JSON, metrics JSON, ASCII phase table.

The Chrome format is the trace-event "complete event" flavour (``ph: "X"``
with microsecond ``ts``/``dur``) so a ``--trace`` file loads directly in
``chrome://tracing`` / Perfetto.  The phase table follows the monospace
conventions of :mod:`repro.bench.ascii_chart` (right-aligned numbers,
``#`` bars scaled to the peak) so traced runs read like the paper-figure
artefacts the bench suite already prints.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import InvalidParameterError
from repro.obs.trace import PhaseStats, Span, Trace, aggregate_phases

__all__ = [
    "phase_table",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics",
]


def _chrome_args(span: Span) -> dict[str, object]:
    args: dict[str, object] = {str(k): v for k, v in span.attrs.items()}
    for key, value in span.counter_delta.items():
        args[f"delta.{key}"] = value
    if span.cpu_s:
        args["cpu_s"] = span.cpu_s
    return args


def to_chrome_trace(trace: Trace) -> dict[str, object]:
    """A trace as a ``chrome://tracing``-loadable trace-event document.

    Every span becomes one complete event (``ph: "X"``): ``ts`` is the span
    start, ``dur`` its wall time, both in microseconds; attributes and
    counter deltas ride in ``args``.  All events share ``pid=1``/``tid=1``
    (one process, nesting conveyed by time containment).
    """
    events: list[dict[str, object]] = []
    for depth, span in trace.walk():
        events.append(
            {
                "name": span.name,
                "cat": "skyline" if depth == 0 else "phase",
                "ph": "X",
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.wall_s * 1e6, 3),
                "pid": 1,
                "tid": 1,
                "args": _chrome_args(span),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Trace, path: str | Path) -> Path:
    """Serialise :func:`to_chrome_trace` output to ``path``; returns it."""
    target = Path(path)
    target.write_text(
        json.dumps(to_chrome_trace(trace), indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return target


def write_metrics(metrics: dict[str, float], path: str | Path) -> Path:
    """Dump a flat metrics mapping as sorted, pretty-printed JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(metrics, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def validate_chrome_trace(document: object) -> int:
    """Check a loaded JSON document against the trace-event schema.

    Returns the event count; raises :class:`InvalidParameterError` on the
    first violation.  Used by the CI traced-smoke step to gate the
    ``--trace`` artefact before uploading it.
    """
    if not isinstance(document, dict):
        raise InvalidParameterError("chrome trace must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise InvalidParameterError("chrome trace needs a 'traceEvents' array")
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise InvalidParameterError(f"traceEvents[{position}] is not an object")
        for key, kinds in (
            ("name", (str,)),
            ("ph", (str,)),
            ("ts", (int, float)),
            ("pid", (int,)),
            ("tid", (int,)),
        ):
            if not isinstance(event.get(key), kinds):
                raise InvalidParameterError(
                    f"traceEvents[{position}] field {key!r} missing or mistyped"
                )
        if event["ph"] == "X" and not isinstance(event.get("dur"), (int, float)):
            raise InvalidParameterError(
                f"traceEvents[{position}] complete event lacks numeric 'dur'"
            )
    return len(events)


def _hit_rate(delta: dict[str, float], kind: str) -> str:
    """A phase's ``{kind}_cache`` hit rate as a 4-char cell ('' if idle)."""
    hits = delta.get(f"{kind}_cache_hits", 0.0)
    misses = delta.get(f"{kind}_cache_misses", 0.0)
    lookups = hits + misses
    if not lookups:
        return " " * 4
    return f"{hits / lookups * 100.0:3.0f}%"


def _sorted_by_wall(phases: list[PhaseStats]) -> list[PhaseStats]:
    """Phases re-ordered so siblings descend by wall time, depth-first.

    The tree shape is preserved (children still follow their parent);
    only the order *among siblings* changes, so the slowest subtree reads
    first — the triage order a latency investigation wants.
    """
    children: dict[tuple[str, ...], list[PhaseStats]] = {}
    for phase in phases:
        children.setdefault(phase.path[:-1], []).append(phase)

    ordered: list[PhaseStats] = []

    def emit(parent: tuple[str, ...]) -> None:
        for phase in sorted(
            children.get(parent, ()), key=lambda p: p.wall_s, reverse=True
        ):
            ordered.append(phase)
            emit(phase.path)

    emit(())
    return ordered


def phase_table(trace: Trace, width: int = 24) -> str:
    """Render a per-phase breakdown: calls, wall time, share, ΔDT, cache
    hit rates, bars.

    Phase rows are indented by tree depth with siblings sorted by wall
    time descending (slowest subtree first); sibling spans with the same
    name are aggregated (23 ``merge.round`` records collapse to one row
    with ``calls=23``).  The ``idx%``/``prep%`` columns are the phase's
    subset-index and prepared-cache hit rates, computed from the
    :meth:`DominanceCounter.as_dict` deltas captured at span boundaries
    (blank when the phase performed no lookups).  Bars are ``#`` runs
    scaled to the slowest phase, matching
    :func:`repro.bench.ascii_chart.bar_chart`.
    """
    if width < 1:
        raise InvalidParameterError(f"width must be >= 1, got {width}")
    phases = _sorted_by_wall(aggregate_phases(trace))
    if not phases:
        return "(empty trace)"
    total = sum(phase.wall_s for phase in phases if phase.depth == 0) or 1.0
    peak = max(phase.wall_s for phase in phases) or 1.0
    name_width = max(
        len("  " * phase.depth + phase.name) for phase in phases
    )
    name_width = max(name_width, len("phase"))
    header = (
        f"{'phase'.ljust(name_width)}  {'calls':>6}  {'wall ms':>10}  "
        f"{'%':>6}  {'ΔDT':>12}  {'idx%':>4}  {'prep%':>5}  "
    )
    lines = [header.rstrip(), "-" * (len(header) + width)]
    for phase in phases:
        label = "  " * phase.depth + phase.name
        share = phase.wall_s / total * 100.0
        bar = "#" * max(1, round(phase.wall_s / peak * width)) if phase.wall_s else ""
        delta = f"{phase.dominance_tests:12.0f}" if phase.dominance_tests else " " * 12
        index_rate = _hit_rate(phase.counter_delta, "index")
        prepared_rate = _hit_rate(phase.counter_delta, "prepared")
        lines.append(
            f"{label.ljust(name_width)}  {phase.calls:6d}  "
            f"{phase.wall_s * 1e3:10.3f}  {share:6.1f}  {delta}  "
            f"{index_rate:>4}  {prepared_rate:>5}  {bar}".rstrip()
        )
    return "\n".join(lines)
