"""Bench-trajectory regression gate over ``BENCH_throughput.json``.

The schema-v2 bench report keeps one entry per scenario; this module turns
that file into a *trajectory*: every :func:`upsert <benchmarks.
bench_throughput.upsert>` appends a compact :func:`trajectory_sample`
(gateable metrics + the executed plan) to the entry's ``history`` list, and
:func:`check_reports` compares a fresh run against the recorded history —
failing CI on sustained slowdowns while tolerating run-to-run noise.

Noise tolerance has three legs:

- **per-kind tolerances** — wall-clock metrics are jittery (scheduler,
  cache state, CI-host variance) and get a generous multiplicative
  tolerance; charged dominance tests are near-deterministic for a fixed
  configuration and get a tight one; speedup/DT ratios sit in between and
  use the wall tolerance (they are wall-derived).
- **median baselines** — the baseline is the median of the recorded
  history samples, not the latest, so one anomalously fast past run cannot
  condemn every future run.
- **sustained failures** — a fresh value only counts as a regression when
  it also exceeds tolerance against each of the last ``sustained`` history
  samples, so a single slow *past* sample cannot mask and a lucky past
  median cannot flag a one-off.

Metrics are discovered structurally, so new bench fields join the gate
without registration: keys ending in ``_s`` are lower-is-better wall
times, keys containing ``dominance_tests`` are lower-is-better test
counts, ``speedup``-suffixed keys are higher-is-better ratios and
``dt_ratio`` keys lower-is-better ratios.  Gate constants (``gate_*``,
``*_gate_*``), cost *estimates* (``*_est``), configuration, plan and
history subtrees are excluded.

CLI::

    python -m repro.obs.regress --history BENCH_throughput.json \\
        --fresh fresh.json [--inject-slowdown 2.0]

``--inject-slowdown`` multiplies the fresh report's wall metrics (and
divides its speedups) before checking — the self-test that proves the gate
actually fails on a real slowdown (``make bench-check`` documentation and
CI both use it).
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from statistics import median
from typing import Mapping

__all__ = [
    "Finding",
    "check_reports",
    "classify_metric",
    "collect_metrics",
    "inject_slowdown",
    "main",
    "trajectory_sample",
]

#: Multiplicative tolerance for wall-clock metrics (and the ratios derived
#: from them).  Wide on purpose: CI hosts differ and wall time is the
#: noisiest signal; a genuine 2x slowdown still clears it.
DEFAULT_WALL_TOLERANCE = 1.75

#: Multiplicative tolerance for charged dominance tests.  DT counts are a
#: pure function of data + algorithm + cache state, so anything past a few
#: percent is a real behavioural change, not noise.
DEFAULT_DT_TOLERANCE = 1.05

#: Fresh value must breach tolerance against the median *and* each of this
#: many most-recent history samples to count as a regression.
DEFAULT_SUSTAINED = 2

#: History samples retained per scenario entry (FIFO).
MAX_HISTORY = 20

#: Wall metrics where both sides sit under this many seconds are skipped:
#: sub-5ms timings are dominated by timer and scheduler granularity.
_WALL_FLOOR_S = 0.005

#: Subtrees never walked for metrics.
_SKIP_KEYS = frozenset({"config", "history", "plan", "recorded_unix"})


def classify_metric(name: str) -> str | None:
    """The regression class of a leaf field name, or ``None``.

    Classes: ``"wall"`` (lower is better, wall tolerance), ``"tests"``
    (lower is better, DT tolerance), ``"higher_ratio"`` (higher is better,
    wall tolerance — speedups), ``"lower_ratio"`` (lower is better, DT
    tolerance — DT ratios).
    """
    if "gate" in name:
        return None
    if name.endswith("_est"):
        return None
    if name.endswith("_s"):
        return "wall"
    if "dominance_tests" in name:
        return "tests"
    if name == "speedup" or name.endswith("speedup"):
        return "higher_ratio"
    if name == "dt_ratio" or name.endswith("dt_ratio"):
        return "lower_ratio"
    return None


def collect_metrics(entry: Mapping[str, object]) -> dict[str, float]:
    """Every gateable metric of one scenario entry, as dotted-path keys."""
    metrics: dict[str, float] = {}

    def visit(node: Mapping[str, object], prefix: str) -> None:
        for key, value in node.items():
            if key in _SKIP_KEYS:
                continue
            if isinstance(value, Mapping):
                visit(value, f"{prefix}{key}.")
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if classify_metric(key) is not None:
                metrics[f"{prefix}{key}"] = float(value)

    visit(entry, "")
    return metrics


def trajectory_sample(entry: Mapping[str, object]) -> dict[str, object]:
    """The compact history sample :func:`upsert` appends per run."""
    return {
        "recorded_unix": entry.get("recorded_unix"),
        "plan": copy.deepcopy(entry.get("plan")),
        "metrics": collect_metrics(entry),
    }


@dataclass(frozen=True)
class Finding:
    """One metric regression: where, how bad, against what baseline."""

    scenario: str
    metric: str
    kind: str
    baseline: float
    fresh: float
    ratio: float
    tolerance: float
    note: str = ""

    def render(self) -> str:
        direction = "fell" if self.kind == "higher_ratio" else "rose"
        line = (
            f"{self.scenario}: {self.metric} {direction} "
            f"{self.baseline:g} -> {self.fresh:g} "
            f"({self.ratio:.2f}x, tolerance {self.tolerance:g}x)"
        )
        return f"{line}  [{self.note}]" if self.note else line


def _tolerance_for(kind: str, wall_tolerance: float, dt_tolerance: float) -> float:
    return dt_tolerance if kind in ("tests", "lower_ratio") else wall_tolerance


def _breaches(kind: str, fresh: float, baseline: float, tolerance: float) -> bool:
    """Whether ``fresh`` regresses past ``tolerance`` versus ``baseline``."""
    if kind == "higher_ratio":
        if baseline <= 0:
            return False
        return fresh * tolerance < baseline
    if kind == "wall" and max(fresh, baseline) < _WALL_FLOOR_S:
        return False
    if baseline <= 0:
        # A zero baseline (e.g. zero charged tests) regresses on any
        # measurable fresh value for the deterministic kinds only.
        return kind in ("tests", "lower_ratio") and fresh > 0
    return fresh > baseline * tolerance


def _history_metrics(entry: Mapping[str, object]) -> list[dict[str, float]]:
    """The entry's history sample metrics, oldest first.

    Entries recorded before the history schema (or hand-written fixtures)
    fall back to a single sample collected from the entry itself.
    """
    history = entry.get("history")
    samples: list[dict[str, float]] = []
    if isinstance(history, list):
        for sample in history:
            if isinstance(sample, Mapping) and isinstance(
                sample.get("metrics"), Mapping
            ):
                samples.append(
                    {k: float(v) for k, v in sample["metrics"].items()}  # type: ignore[union-attr]
                )
    if not samples:
        samples = [collect_metrics(entry)]
    return samples


def _plan_note(entry: Mapping[str, object], fresh_entry: Mapping[str, object]) -> str:
    """Attribute a shift to a plan change when the recorded plans differ."""
    baseline_plan = entry.get("plan")
    fresh_plan = fresh_entry.get("plan")
    if baseline_plan == fresh_plan:
        return ""
    if fresh_plan is None or baseline_plan is None:
        return "plan recording changed"
    changed = [
        f"{key}: {baseline_plan.get(key)!r} -> {fresh_plan.get(key)!r}"  # type: ignore[union-attr]
        for key in sorted(set(baseline_plan) | set(fresh_plan))  # type: ignore[arg-type]
        if baseline_plan.get(key) != fresh_plan.get(key)  # type: ignore[union-attr]
    ]
    return "plan changed: " + "; ".join(changed)


def check_reports(
    history_report: Mapping[str, object],
    fresh_report: Mapping[str, object],
    *,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    dt_tolerance: float = DEFAULT_DT_TOLERANCE,
    sustained: int = DEFAULT_SUSTAINED,
) -> tuple[list[Finding], int]:
    """Regressions of ``fresh_report`` against ``history_report``.

    Both arguments are loaded schema-v2 bench reports.  Returns the
    regression findings plus the number of metrics compared; scenarios
    present on only one side are skipped (the fresh run is typically a
    subset of the recorded scenarios).
    """
    findings: list[Finding] = []
    compared = 0
    history_scenarios = history_report.get("scenarios")
    fresh_scenarios = fresh_report.get("scenarios")
    if not isinstance(history_scenarios, Mapping) or not isinstance(
        fresh_scenarios, Mapping
    ):
        return findings, compared
    for key in sorted(fresh_scenarios):
        if key not in history_scenarios:
            continue
        history_entry = history_scenarios[key]
        fresh_entry = fresh_scenarios[key]
        if not isinstance(history_entry, Mapping) or not isinstance(
            fresh_entry, Mapping
        ):
            continue
        samples = _history_metrics(history_entry)
        fresh_metrics = collect_metrics(fresh_entry)
        plan_note = _plan_note(history_entry, fresh_entry)
        for metric, fresh_value in sorted(fresh_metrics.items()):
            values = [s[metric] for s in samples if metric in s]
            if not values:
                continue
            kind = classify_metric(metric.rsplit(".", 1)[-1])
            if kind is None:
                continue
            compared += 1
            tolerance = _tolerance_for(kind, wall_tolerance, dt_tolerance)
            baseline = median(values)
            if not _breaches(kind, fresh_value, baseline, tolerance):
                continue
            recent = values[-max(1, sustained):]
            if not all(
                _breaches(kind, fresh_value, value, tolerance) for value in recent
            ):
                continue
            ratio = (
                baseline / fresh_value
                if kind == "higher_ratio" and fresh_value > 0
                else (fresh_value / baseline if baseline > 0 else float("inf"))
            )
            findings.append(
                Finding(
                    scenario=str(key),
                    metric=metric,
                    kind=kind,
                    baseline=baseline,
                    fresh=fresh_value,
                    ratio=ratio,
                    tolerance=tolerance,
                    note=plan_note,
                )
            )
    return findings, compared


def inject_slowdown(report: Mapping[str, object], factor: float) -> dict[str, object]:
    """A deep copy of ``report`` with every wall metric slowed ``factor``-fold.

    Wall times multiply by ``factor``; speedups (wall-derived,
    higher-is-better) divide by it.  Deterministic DT metrics are left
    untouched — a wall slowdown does not change charged tests.  Used by the
    gate's self-test: the doctored report must fail :func:`check_reports`.
    """
    doctored = copy.deepcopy(dict(report))

    def visit(node: dict[str, object]) -> None:
        for key, value in node.items():
            if key in _SKIP_KEYS:
                continue
            if isinstance(value, dict):
                visit(value)
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            kind = classify_metric(key)
            if kind == "wall":
                node[key] = float(value) * factor
            elif kind == "higher_ratio":
                node[key] = float(value) / factor

    scenarios = doctored.get("scenarios")
    if isinstance(scenarios, dict):
        for entry in scenarios.values():
            if isinstance(entry, dict):
                visit(entry)
    return doctored


def _load_report(path: Path) -> dict[str, object]:
    document = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(document, dict) or document.get("schema_version") != 2:
        raise SystemExit(
            f"error: {path} is not a schema-v2 bench report "
            f"(run benchmarks/bench_throughput.py to regenerate)"
        )
    return document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.regress",
        description="Compare a fresh bench run against recorded history; "
        "exit 1 on sustained regressions.",
    )
    parser.add_argument(
        "--history",
        default="BENCH_throughput.json",
        help="recorded trajectory report (default: BENCH_throughput.json)",
    )
    parser.add_argument(
        "--fresh", required=True, help="freshly produced bench report to check"
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=DEFAULT_WALL_TOLERANCE,
        help="multiplicative tolerance for wall metrics and speedups "
        f"(default {DEFAULT_WALL_TOLERANCE})",
    )
    parser.add_argument(
        "--dt-tolerance",
        type=float,
        default=DEFAULT_DT_TOLERANCE,
        help="multiplicative tolerance for dominance-test metrics "
        f"(default {DEFAULT_DT_TOLERANCE})",
    )
    parser.add_argument(
        "--sustained",
        type=int,
        default=DEFAULT_SUSTAINED,
        help="recent history samples a regression must also breach "
        f"(default {DEFAULT_SUSTAINED})",
    )
    parser.add_argument(
        "--inject-slowdown",
        type=float,
        default=None,
        metavar="FACTOR",
        help="self-test: slow the fresh report's wall metrics FACTOR-fold "
        "before checking (the gate must then fail)",
    )
    args = parser.parse_args(argv)

    history = _load_report(Path(args.history))
    fresh = _load_report(Path(args.fresh))
    if args.inject_slowdown is not None:
        if args.inject_slowdown <= 0:
            parser.error("--inject-slowdown must be > 0")
        print(f"injecting a {args.inject_slowdown:g}x synthetic slowdown")
        fresh = inject_slowdown(fresh, args.inject_slowdown)

    findings, compared = check_reports(
        history,
        fresh,
        wall_tolerance=args.wall_tolerance,
        dt_tolerance=args.dt_tolerance,
        sustained=args.sustained,
    )
    overlap = sorted(
        set(fresh.get("scenarios", {})) & set(history.get("scenarios", {}))  # type: ignore[arg-type]
    )
    print(
        f"bench-check: {len(overlap)} scenario(s), {compared} metric(s) "
        f"compared against {args.history}"
    )
    for key in overlap:
        scenario_findings = [f for f in findings if f.scenario == key]
        status = "REGRESSED" if scenario_findings else "OK"
        print(f"  {status:9s} {key}")
        for finding in scenario_findings:
            print(f"            {finding.render()}")
    if not overlap:
        print("  (no overlapping scenarios — nothing to gate)")
    if findings:
        print(f"FAIL: {len(findings)} sustained regression(s)")
        return 1
    print("PASS: no sustained regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
