"""Scan-phase throughput: batched subset-boosted scans vs the scalar path.

Isolates the *scan phase* of the boosted pipeline — Merge (Algorithm 1)
runs once, outside the timed region, then each host's ``run_phase`` is
timed repeatedly with a fresh container per repeat:

- **scalar**: unmemoized index queries, per-point candidate gather (and,
  for SDI, the per-point filter + stable sort) — the pre-batching
  reference path, kept behind ``SDI(batched=False)`` /
  ``SubsetContainer(memoize=False)``;
- **batched**: memoized queries, cached contiguous candidate blocks and
  SDI's incrementally maintained sorted views.

Both paths must produce the identical skyline and charge the identical
dominance-test count — the script exits non-zero otherwise, so it doubles
as an equivalence gate.  Results land in ``BENCH_throughput.json``.

A second scenario benchmarks the engine's prepared caches under the
ROADMAP's target workload: one dataset, 50 skyline queries cycling over a
handful of subspaces.  The *cold* path uses a fresh
:class:`~repro.engine.SkylineEngine` per query (no shared state, the
pre-engine behaviour); the *warm* path shares one engine, so repeated
subspaces are served from cached views, Merge results and sort orders.
Both paths must return identical skylines, and the warm path must be at
least 2x faster in aggregate.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # paper-scale
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from itertools import combinations

from repro.algorithms.salsa import SaLSa
from repro.algorithms.sdi import SDI
from repro.algorithms.sfs import SFS
from repro.core.container import SubsetContainer
from repro.core.merge import merge
from repro.core.stability import default_threshold
from repro.data import generate
from repro.engine import SkylineEngine
from repro.engine.context import ExecutionContext
from repro.obs import Tracer, aggregate_phases
from repro.stats.counters import DominanceCounter

#: host name -> (scalar factory, batched factory)
HOSTS = {
    "sdi": (lambda: SDI(batched=False), lambda: SDI(batched=True)),
    "sfs": (SFS, SFS),
    "salsa": (SaLSa, SaLSa),
}


def time_scan_phase(dataset, merged, host_factory, memoize, repeats):
    """Best-of-``repeats`` wall clock of one host's scan phase."""
    d = dataset.dimensionality
    masks = np.zeros(dataset.cardinality, dtype=np.int64)
    masks[merged.remaining_ids] = merged.masks
    best = float("inf")
    skyline: list[int] = []
    counter = DominanceCounter()
    for _ in range(repeats):
        counter = DominanceCounter()
        container = SubsetContainer(dataset.values, d, counter, memoize=memoize)
        host = host_factory()
        start = time.perf_counter()
        skyline = host.run_phase(
            dataset, merged.remaining_ids, masks, container, counter
        )
        best = min(best, time.perf_counter() - start)
    return skyline, counter, best


def run(kind, n, d, seed, repeats):
    dataset = generate(kind, n=n, d=d, seed=seed)
    sigma = default_threshold(d)
    counter = DominanceCounter()
    merged = merge(dataset, sigma, counter)
    report = {
        "config": {
            "kind": kind,
            "n": n,
            "d": d,
            "seed": seed,
            "sigma": sigma,
            "repeats": repeats,
            "merge_pivots": len(merged.pivot_ids),
            "remaining_points": int(merged.remaining_ids.size),
        },
        "hosts": {},
    }
    ok = True
    for name, (scalar_factory, batched_factory) in HOSTS.items():
        scalar_sky, scalar_counter, scalar_s = time_scan_phase(
            dataset, merged, scalar_factory, memoize=False, repeats=repeats
        )
        batched_sky, batched_counter, batched_s = time_scan_phase(
            dataset, merged, batched_factory, memoize=True, repeats=repeats
        )
        identical = (
            scalar_sky == batched_sky
            and scalar_counter.tests == batched_counter.tests
        )
        ok = ok and identical
        entry = {
            "scalar_s": round(scalar_s, 6),
            "batched_s": round(batched_s, 6),
            "speedup": round(scalar_s / batched_s, 3) if batched_s else None,
            "skyline_size": len(batched_sky),
            "dominance_tests": batched_counter.tests,
            "scalar_dominance_tests": scalar_counter.tests,
            "index_cache_hits": batched_counter.index_cache_hits,
            "index_cache_misses": batched_counter.index_cache_misses,
            "identical": identical,
        }
        report["hosts"][name] = entry
        marker = "" if identical else "  <-- MISMATCH"
        print(
            f"{name:>6}: scalar {scalar_s:8.4f}s  batched {batched_s:8.4f}s  "
            f"speedup {entry['speedup']:>6}x  "
            f"skyline {entry['skyline_size']}  DT {entry['dominance_tests']}"
            f"{marker}"
        )
    report["identical"] = ok
    return report, ok


def query_stream(d, queries, distinct=10, width=2):
    """A deterministic cycle of ``queries`` subspace queries.

    ``distinct`` dimension subsets of ``width`` dims each, visited
    round-robin — the interactive "compare two criteria at a time" shape
    where per-query scan work is small and the prepared Merge results and
    sort orders carry the cost.
    """
    pool = list(combinations(range(d), width))[:distinct]
    return [pool[i % len(pool)] for i in range(queries)]


def run_session(dataset, stream, algorithm, shared_engine):
    """Total wall clock + results for one query stream.

    ``shared_engine`` keeps one engine (and its prepared caches) across the
    stream; otherwise every query gets a fresh engine, reproducing the
    stateless pre-engine behaviour.
    """
    engine = SkylineEngine() if shared_engine else None
    counter = DominanceCounter()
    results = []
    total = 0.0
    for dims in stream:
        query_engine = engine if engine is not None else SkylineEngine()
        start = time.perf_counter()
        view = query_engine.prepare(dataset).view(dims, counter=counter)
        result = query_engine.execute(view, algorithm, counter=counter)
        total += time.perf_counter() - start
        results.append(list(result.indices))
    return results, counter, total


def run_repeated_queries(kind, n, d, seed, queries=50, algorithm="sfs-subset"):
    """Cold (fresh engine per query) vs warm (shared engine) sessions."""
    dataset = generate(kind, n=n, d=d, seed=seed)
    stream = query_stream(d, queries)
    cold_results, cold_counter, cold_s = run_session(
        dataset, stream, algorithm, shared_engine=False
    )
    warm_results, warm_counter, warm_s = run_session(
        dataset, stream, algorithm, shared_engine=True
    )
    identical = cold_results == warm_results
    speedup = cold_s / warm_s if warm_s else None
    report = {
        "config": {
            "kind": kind,
            "n": n,
            "d": d,
            "seed": seed,
            "queries": queries,
            "distinct_subspaces": len(set(stream)),
            "algorithm": algorithm,
        },
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(speedup, 3) if speedup else None,
        "cold_dominance_tests": cold_counter.tests,
        "warm_dominance_tests": warm_counter.tests,
        "warm_prepared_cache_hits": warm_counter.prepared_cache_hits,
        "warm_prepared_cache_misses": warm_counter.prepared_cache_misses,
        "identical": identical,
        "meets_2x": bool(speedup and speedup >= 2.0),
    }
    marker = "" if identical else "  <-- MISMATCH"
    print(
        f"repeated-queries: cold {cold_s:8.4f}s  warm {warm_s:8.4f}s  "
        f"speedup {report['speedup']:>6}x  "
        f"prepared hits {warm_counter.prepared_cache_hits}{marker}"
    )
    return report, identical and report["meets_2x"]


def phase_breakdown(kind, n, d, seed, algorithm="sdi-subset"):
    """Per-phase wall/CPU/DT profile of one traced engine run.

    One extra execution with a live :class:`~repro.obs.Tracer` — the timed
    scenarios above stay untraced, so their numbers are unaffected.
    """
    dataset = generate(kind, n=n, d=d, seed=seed)
    engine = SkylineEngine(ExecutionContext(tracer=Tracer()))
    result = engine.execute(dataset, algorithm)
    phases = {}
    for phase in aggregate_phases(result.trace):
        phases[".".join(phase.path)] = {
            "calls": phase.calls,
            "wall_s": round(phase.wall_s, 6),
            "cpu_s": round(phase.cpu_s, 6),
            "dominance_tests": phase.dominance_tests,
        }
    return {"algorithm": algorithm, "phases": phases}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kind", default="UI", choices=("UI", "CO", "AC"))
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--d", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--queries",
        type=int,
        default=50,
        help="queries in the repeated-subspace engine scenario",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke configuration (n=4000, d=6, 2 repeats)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_throughput.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.n, args.d, args.repeats = 4000, 6, 2

    report, ok = run(args.kind, args.n, args.d, args.seed, args.repeats)
    repeated, repeated_ok = run_repeated_queries(
        args.kind, args.n, args.d, args.seed, queries=args.queries
    )
    report["repeated_queries"] = repeated
    report["phases"] = phase_breakdown(args.kind, args.n, args.d, args.seed)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not ok:
        print("ERROR: batched path diverged from the scalar reference")
        return 1
    if not repeated_ok:
        print(
            "ERROR: warm engine session diverged from cold or fell short "
            "of the 2x prepared-cache speedup"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
