"""Scan-phase throughput: batched scans, index backends, block-parallel.

Isolates the *scan phase* of the boosted pipeline — Merge (Algorithm 1)
runs once, outside the timed region, then each host's ``run_phase`` is
timed repeatedly with a fresh container per repeat:

- **scalar**: unmemoized index queries, per-point candidate gather (and,
  for SDI, the per-point filter + stable sort) — the pre-batching
  reference path, kept behind ``SDI(batched=False)`` /
  ``SubsetContainer(memoize=False)``;
- **batched**: memoized queries, cached contiguous candidate blocks and
  SDI's incrementally maintained sorted views;
- **flat vs map**: the batched scan on both subset-index backends — the
  map prefix tree versus :class:`~repro.core.flat_index.FlatSubsetIndex`'s
  vectorised struct-of-arrays filter.

Every pair of paths must produce the identical skyline and charge the
identical dominance-test count — the script exits non-zero otherwise, so
it doubles as an equivalence gate.  The ``block_parallel`` scenario runs
the engine's prune-aware block-parallel plan (sort-order partitioning,
shared-survivor prefix exchange, seeded merge) against the serial flat
scan under two gates: a deterministic dominance-test-ratio gate
(``PARALLEL_DT_RATIO``, enforced on any host) and the >= 2x wall-clock
gate, which executes whenever the host has the CPUs and otherwise records
``gate_pass=null`` with an explicit ``skip_reason``.

The ``incremental_repair`` scenario measures mutation maintenance: a 1%
insert/delete batch applied through ``PreparedDataset.apply_delta`` and
answered by the planner's incremental-repair plan, against full
invalidation and recompute — bit-identical skyline ids enforced
everywhere, the >= 5x wall gate recorded honestly on the canonical
configuration only.

Results land in ``BENCH_throughput.json`` as *schema version 2*: one
``scenarios`` mapping keyed by scenario name + configuration.  Re-running
any configuration upserts its entry in place — the file no longer grows
with duplicate appends — and entries from other configurations (e.g. a
``--quick`` CI run next to a paper-scale run) coexist under their own
keys.  Each entry also carries a bounded ``history`` trajectory (one
metrics sample per upsert, plus the executed ``plan`` fields) that
``python -m repro.obs.regress`` / ``make bench-check`` compares fresh
runs against to flag sustained slowdowns.

Usage::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # paper-scale
    PYTHONPATH=src python benchmarks/bench_throughput.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_throughput.py \
        --only block_parallel --parallel-n 1000000 --d 6            # wall gate
    PYTHONPATH=src python benchmarks/bench_throughput.py --list-scenarios
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from itertools import combinations

from repro.algorithms.salsa import SaLSa
from repro.algorithms.sdi import SDI
from repro.algorithms.sfs import SFS
from repro.core.container import SubsetContainer
from repro.core.merge import merge
from repro.core.stability import default_threshold
from repro.data import generate
from repro.engine import SkylineEngine
from repro.engine.context import ExecutionContext
from repro.obs import Tracer, aggregate_phases
from repro.obs.regress import MAX_HISTORY, trajectory_sample
from repro.stats.counters import DominanceCounter

SCHEMA_VERSION = 2

#: host name -> (scalar factory, batched factory)
HOSTS = {
    "sdi": (lambda: SDI(batched=False), lambda: SDI(batched=True)),
    "sfs": (SFS, SFS),
    "salsa": (SaLSa, SaLSa),
}

#: Best-of-3 batched map-index scan times recorded by PR 2 on the
#: canonical cold single-query scenario (UI, n=100k, d=8, seed=0).  The
#: flat-backend gate (>= 1.5x, geometric mean across hosts) is measured
#: against these fixed baselines so the comparison survives later
#: map-index improvements.
PR2_BATCHED_BASELINE_S = {"sdi": 2.168256, "sfs": 2.805391, "salsa": 3.927047}
PR2_BASELINE_CONFIG = ("UI", 100_000, 8, 0)
FLAT_GATE_SPEEDUP = 1.5
PARALLEL_GATE_SPEEDUP = 2.0

#: The incremental-repair gate: a 1% mutation batch maintained through
#: ``apply_delta`` + the incremental plan must beat invalidate-and-full-
#: recompute by this factor on the canonical configuration.
INCREMENTAL_GATE_SPEEDUP = 5.0
INCREMENTAL_MUTATION_FRACTION = 0.01
INCREMENTAL_CANONICAL_CONFIG = ("UI", 100_000, 8, 0)

#: Hard ceiling on charged parallel dominance tests relative to serial.
#: Unlike the wall-clock gate this is deterministic for a given
#: configuration and seed, so it is enforced on every host — a single-core
#: CI container measures the same ratio a 64-core box does.
PARALLEL_DT_RATIO = 1.2

#: Scenario names accepted by ``--only`` (in execution order).
SCENARIOS = (
    "batched_vs_scalar",
    "flat_vs_map",
    "block_parallel",
    "repeated_queries",
    "incremental_repair",
    "phases",
)


# -- schema v2 report file --------------------------------------------------


def load_report(path: Path) -> dict:
    """The existing schema-v2 report, or a fresh empty one.

    Legacy (pre-v2) files — a single flat report dict — are discarded
    rather than merged: their entries carried no scenario keys, which is
    exactly the duplication bug the keyed schema fixes.
    """
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            data = None
        if (
            isinstance(data, dict)
            and data.get("schema_version") == SCHEMA_VERSION
            and isinstance(data.get("scenarios"), dict)
        ):
            return data
    return {"schema_version": SCHEMA_VERSION, "scenarios": {}}


def scenario_key(name: str, kind: str, n: int, d: int, seed: int) -> str:
    """The upsert key: scenario name + the configuration that shaped it."""
    return f"{name}|{kind}|n={n}|d={d}|seed={seed}"


def upsert(report: dict, key: str, entry: dict) -> None:
    """Replace ``key``'s entry, extending its recorded trajectory.

    The entry replaces the previous one wholesale (no duplicate appends),
    but the previous entry's ``history`` — the bench trajectory the
    :mod:`repro.obs.regress` gate compares fresh runs against — carries
    over, gains a sample of the new entry, and stays capped at
    ``MAX_HISTORY``.
    """
    entry["recorded_unix"] = int(time.time())
    previous = report["scenarios"].get(key)
    history = list(previous.get("history", ())) if isinstance(previous, dict) else []
    history.append(trajectory_sample(entry))
    entry["history"] = history[-MAX_HISTORY:]
    report["scenarios"][key] = entry


def plan_fields(plan) -> dict:
    """The executed-plan fields a scenario entry records for trajectory.

    A plan change (different algorithm, backend, or strategy) is the most
    common honest explanation for a wall-time shift, so the regression
    gate surfaces these fields next to any finding.
    """
    return {
        "algorithm": plan.label,
        "index_backend": plan.index_backend,
        "incremental": bool(plan.incremental),
        "parallel_strategy": plan.parallel_strategy,
        "workers": plan.workers,
    }


# -- scenario: batched vs scalar --------------------------------------------


def time_scan_phase(
    dataset, merged, host_factory, memoize, repeats, index_backend="map"
):
    """Best-of-``repeats`` wall clock of one host's scan phase."""
    d = dataset.dimensionality
    masks = np.zeros(dataset.cardinality, dtype=np.int64)
    masks[merged.remaining_ids] = merged.masks
    best = float("inf")
    skyline: list[int] = []
    counter = DominanceCounter()
    for _ in range(repeats):
        counter = DominanceCounter()
        container = SubsetContainer(
            dataset.values, d, counter, memoize=memoize, backend=index_backend
        )
        host = host_factory()
        start = time.perf_counter()
        skyline = host.run_phase(
            dataset, merged.remaining_ids, masks, container, counter
        )
        best = min(best, time.perf_counter() - start)
    return skyline, counter, best


def run_batched_vs_scalar(kind, n, d, seed, repeats):
    dataset = generate(kind, n=n, d=d, seed=seed)
    sigma = default_threshold(d)
    counter = DominanceCounter()
    merged = merge(dataset, sigma, counter)
    report = {
        "config": {
            "kind": kind,
            "n": n,
            "d": d,
            "seed": seed,
            "sigma": sigma,
            "repeats": repeats,
            "merge_pivots": len(merged.pivot_ids),
            "remaining_points": int(merged.remaining_ids.size),
        },
        "hosts": {},
        # Scan-phase bench, no engine plan: record the equivalent wiring.
        "plan": {
            "algorithm": "scan-phase",
            "index_backend": "map",
            "incremental": False,
            "parallel_strategy": "none",
            "workers": 1,
        },
    }
    ok = True
    for name, (scalar_factory, batched_factory) in HOSTS.items():
        scalar_sky, scalar_counter, scalar_s = time_scan_phase(
            dataset, merged, scalar_factory, memoize=False, repeats=repeats
        )
        batched_sky, batched_counter, batched_s = time_scan_phase(
            dataset, merged, batched_factory, memoize=True, repeats=repeats
        )
        identical = (
            scalar_sky == batched_sky
            and scalar_counter.tests == batched_counter.tests
        )
        ok = ok and identical
        entry = {
            "scalar_s": round(scalar_s, 6),
            "batched_s": round(batched_s, 6),
            "speedup": round(scalar_s / batched_s, 3) if batched_s else None,
            "skyline_size": len(batched_sky),
            "dominance_tests": batched_counter.tests,
            "scalar_dominance_tests": scalar_counter.tests,
            "index_cache_hits": batched_counter.index_cache_hits,
            "index_cache_misses": batched_counter.index_cache_misses,
            "identical": identical,
        }
        report["hosts"][name] = entry
        marker = "" if identical else "  <-- MISMATCH"
        print(
            f"{name:>6}: scalar {scalar_s:8.4f}s  batched {batched_s:8.4f}s  "
            f"speedup {entry['speedup']:>6}x  "
            f"skyline {entry['skyline_size']}  DT {entry['dominance_tests']}"
            f"{marker}"
        )
    report["identical"] = ok
    return (dataset, merged), report, ok


# -- scenario: flat vs map index backend ------------------------------------


def run_flat_vs_map(prepared_pair, kind, n, d, seed, repeats):
    """Cold single-query scan phase on both subset-index backends.

    Gate: on the canonical configuration, the geometric mean across hosts
    of (PR 2 batched map baseline / flat time) must reach
    ``FLAT_GATE_SPEEDUP``; identical skylines and charged dominance tests
    are required on every configuration.
    """
    dataset, merged = prepared_pair
    canonical = (kind, n, d, seed) == PR2_BASELINE_CONFIG
    report = {
        "config": {"kind": kind, "n": n, "d": d, "seed": seed, "repeats": repeats},
        "hosts": {},
        "baseline": "pr2_batched_map" if canonical else None,
        # Scan-phase bench, no engine plan: record the equivalent wiring.
        "plan": {
            "algorithm": "scan-phase",
            "index_backend": "flat",
            "incremental": False,
            "parallel_strategy": "none",
            "workers": 1,
        },
    }
    ok = True
    ratios = []
    for name, (_scalar, batched_factory) in HOSTS.items():
        map_sky, map_counter, map_s = time_scan_phase(
            dataset,
            merged,
            batched_factory,
            memoize=True,
            repeats=repeats,
            index_backend="map",
        )
        flat_sky, flat_counter, flat_s = time_scan_phase(
            dataset,
            merged,
            batched_factory,
            memoize=True,
            repeats=repeats,
            index_backend="flat",
        )
        identical = (
            map_sky == flat_sky and map_counter.tests == flat_counter.tests
        )
        ok = ok and identical
        entry = {
            "map_s": round(map_s, 6),
            "flat_s": round(flat_s, 6),
            "speedup_vs_map": round(map_s / flat_s, 3) if flat_s else None,
            "skyline_size": len(flat_sky),
            "dominance_tests": flat_counter.tests,
            "map_dominance_tests": map_counter.tests,
            "flat_cache_hits": flat_counter.index_cache_hits,
            "flat_cache_misses": flat_counter.index_cache_misses,
            "identical": identical,
        }
        if canonical and flat_s:
            baseline = PR2_BATCHED_BASELINE_S[name]
            entry["pr2_batched_s"] = baseline
            entry["speedup_vs_pr2"] = round(baseline / flat_s, 3)
            ratios.append(baseline / flat_s)
        report["hosts"][name] = entry
        marker = "" if identical else "  <-- MISMATCH"
        print(
            f"{name:>6}: map {map_s:8.4f}s  flat {flat_s:8.4f}s  "
            f"vs-map {entry['speedup_vs_map']:>6}x  "
            + (
                f"vs-PR2 {entry['speedup_vs_pr2']:>6}x"
                if "speedup_vs_pr2" in entry
                else ""
            )
            + marker
        )
    report["identical"] = ok
    gate_ok = ok
    if canonical and ratios:
        geomean = float(np.exp(np.mean(np.log(ratios))))
        report["geomean_speedup_vs_pr2"] = round(geomean, 3)
        report["gate_speedup"] = FLAT_GATE_SPEEDUP
        report["gate_pass"] = bool(ok and geomean >= FLAT_GATE_SPEEDUP)
        gate_ok = report["gate_pass"]
        print(
            f"  flat gate: geomean {geomean:.3f}x vs PR2 baselines "
            f"(need >= {FLAT_GATE_SPEEDUP}x): "
            + ("PASS" if gate_ok else "FAIL")
        )
    return report, gate_ok


# -- scenario: block-parallel vs serial flat --------------------------------


def run_block_parallel(kind, n, d, seed, workers, algorithm="sdi-subset"):
    """Engine block-parallel plan vs the serial flat-backend plan.

    Both paths pin ``index_backend="flat"``: the serial plan scans through
    one flat index, the parallel plan partitions along the monotone order,
    exchanges the shared-survivor prefix, computes block-local boosted
    skylines on the worker pool and resolves the survivors through a
    seeded merge.  Two gates:

    - **dominance-test ratio** (always enforced): charged parallel tests
      must stay within ``PARALLEL_DT_RATIO`` of serial.  The ratio is a
      pure function of the configuration, so a single-core host measures
      the same number a many-core host does.
    - **wall clock** (``gate_pass``): >= ``PARALLEL_GATE_SPEEDUP`` x
      serial, measured only when the host has at least ``workers`` CPUs;
      otherwise ``gate_pass`` is ``None`` with an explicit
      ``skip_reason``.

    Skylines must be bit-identical in every case.
    """
    dataset = generate(kind, n=n, d=d, seed=seed)
    cpus = os.cpu_count() or 1

    serial_counter = DominanceCounter()
    start = time.perf_counter()
    serial = SkylineEngine().execute(
        dataset,
        algorithm,
        counter=serial_counter,
        index_backend="flat",
        workers=1,
    )
    serial_s = time.perf_counter() - start

    parallel_counter = DominanceCounter()
    start = time.perf_counter()
    parallel = SkylineEngine().execute(
        dataset,
        algorithm,
        counter=parallel_counter,
        index_backend="flat",
        workers=workers,
    )
    parallel_s = time.perf_counter() - start

    identical = sorted(serial.indices.tolist()) == sorted(
        parallel.indices.tolist()
    )
    speedup = serial_s / parallel_s if parallel_s else None
    dt_ratio = (
        parallel_counter.tests / serial_counter.tests
        if serial_counter.tests
        else None
    )
    plan = parallel.plan
    report = {
        "config": {
            "kind": kind,
            "n": n,
            "d": d,
            "seed": seed,
            "workers": workers,
            "algorithm": algorithm,
            "cpu_count": cpus,
            "parallel_strategy": plan.parallel_strategy,
            "prefix_size": plan.prefix_size,
            "block_growth": plan.block_growth,
        },
        "plan": plan_fields(plan),
        "serial_flat_s": round(serial_s, 6),
        "parallel_s": round(parallel_s, 6),
        "speedup": round(speedup, 3) if speedup else None,
        "skyline_size": int(serial.indices.size),
        "serial_dominance_tests": serial_counter.tests,
        "parallel_dominance_tests": parallel_counter.tests,
        "dt_ratio": round(dt_ratio, 3) if dt_ratio is not None else None,
        "dt_gate_ratio": PARALLEL_DT_RATIO,
        "dt_gate_pass": bool(
            identical and dt_ratio is not None and dt_ratio <= PARALLEL_DT_RATIO
        ),
        "identical": identical,
        "gate_speedup": PARALLEL_GATE_SPEEDUP,
    }
    if cpus >= workers:
        report["gate_pass"] = bool(
            identical and speedup and speedup >= PARALLEL_GATE_SPEEDUP
        )
        report["skip_reason"] = None
    else:
        report["gate_pass"] = None
        report["skip_reason"] = (
            f"cpu_count={cpus} < workers={workers}: wall-clock speedup "
            "unattainable on this host; dominance-test ratio gate still "
            "enforced"
        )
    marker = "" if identical else "  <-- MISMATCH"
    print(
        f"block-parallel: serial-flat {serial_s:8.4f}s  "
        f"x{workers} workers {parallel_s:8.4f}s  "
        f"speedup {report['speedup']:>6}x  (cpus={cpus}){marker}"
    )
    print(
        f"  dt gate: parallel {parallel_counter.tests} vs serial "
        f"{serial_counter.tests} tests, ratio {report['dt_ratio']} "
        f"(need <= {PARALLEL_DT_RATIO}): "
        + ("PASS" if report["dt_gate_pass"] else "FAIL")
        + f"  [strategy={plan.parallel_strategy}, "
        f"prefix={plan.prefix_size}, growth={plan.block_growth:g}]"
    )
    if report["gate_pass"] is not None:
        print(
            f"  wall gate: speedup {report['speedup']}x "
            f"(need >= {PARALLEL_GATE_SPEEDUP}x): "
            + ("PASS" if report["gate_pass"] else "FAIL (non-fatal)")
        )
    # Only deterministic checks decide the exit code: the skyline must be
    # bit-identical and the DT ratio within budget on every host.  The
    # wall-clock gate executes and records its honest true/false whenever
    # the cores exist, but shared-runner timing noise must not make the
    # bench exit flaky.
    gate_ok = identical and report["dt_gate_pass"]
    return report, gate_ok


# -- scenario listing --------------------------------------------------------


def describe_gates(entry: dict) -> str:
    """One-line gate status of a recorded scenario entry.

    Handles both the current schema (``skip_reason``) and entries written
    before it (``gate_skipped``).
    """
    bits = []
    if "gate_pass" in entry:
        if entry["gate_pass"] is None:
            reason = (
                entry.get("skip_reason")
                or entry.get("gate_skipped")
                or "unspecified"
            )
            bits.append(f"wall-gate=SKIPPED ({reason})")
        else:
            bits.append(
                "wall-gate=" + ("PASS" if entry["gate_pass"] else "FAIL")
            )
    if "dt_gate_pass" in entry:
        bits.append("dt-gate=" + ("PASS" if entry["dt_gate_pass"] else "FAIL"))
    if "meets_2x" in entry:
        bits.append("warm-2x=" + ("PASS" if entry["meets_2x"] else "FAIL"))
    if "identical" in entry:
        bits.append("identical=" + ("yes" if entry["identical"] else "NO"))
    return "  ".join(bits) if bits else "no gates"


def list_scenarios(report: dict) -> None:
    """Print every recorded scenario key with its gate status."""
    scenarios = report.get("scenarios", {})
    if not scenarios:
        print("no recorded scenarios")
        return
    for key in sorted(scenarios):
        print(key)
        print(f"    {describe_gates(scenarios[key])}")


# -- scenario: repeated queries over prepared caches ------------------------


def query_stream(d, queries, distinct=10, width=2):
    """A deterministic cycle of ``queries`` subspace queries.

    ``distinct`` dimension subsets of ``width`` dims each, visited
    round-robin — the interactive "compare two criteria at a time" shape
    where per-query scan work is small and the prepared Merge results and
    sort orders carry the cost.
    """
    pool = list(combinations(range(d), width))[:distinct]
    return [pool[i % len(pool)] for i in range(queries)]


def run_session(dataset, stream, algorithm, shared_engine):
    """Total wall clock + results for one query stream.

    ``shared_engine`` keeps one engine (and its prepared caches) across the
    stream; otherwise every query gets a fresh engine, reproducing the
    stateless pre-engine behaviour.
    """
    engine = SkylineEngine() if shared_engine else None
    counter = DominanceCounter()
    results = []
    total = 0.0
    last_plan = None
    for dims in stream:
        query_engine = engine if engine is not None else SkylineEngine()
        start = time.perf_counter()
        view = query_engine.prepare(dataset).view(dims, counter=counter)
        result = query_engine.execute(view, algorithm, counter=counter)
        total += time.perf_counter() - start
        results.append(list(result.indices))
        last_plan = result.plan
    return results, counter, total, last_plan


def run_repeated_queries(
    kind, n, d, seed, queries=50, algorithm="sfs-subset", explain_analyze=False
):
    """Cold (fresh engine per query) vs warm (shared engine) sessions."""
    dataset = generate(kind, n=n, d=d, seed=seed)
    stream = query_stream(d, queries)
    cold_results, cold_counter, cold_s, _ = run_session(
        dataset, stream, algorithm, shared_engine=False
    )
    warm_results, warm_counter, warm_s, warm_plan = run_session(
        dataset, stream, algorithm, shared_engine=True
    )
    identical = cold_results == warm_results
    speedup = cold_s / warm_s if warm_s else None
    report = {
        "config": {
            "kind": kind,
            "n": n,
            "d": d,
            "seed": seed,
            "queries": queries,
            "distinct_subspaces": len(set(stream)),
            "algorithm": algorithm,
        },
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(speedup, 3) if speedup else None,
        "cold_dominance_tests": cold_counter.tests,
        "warm_dominance_tests": warm_counter.tests,
        "warm_prepared_cache_hits": warm_counter.prepared_cache_hits,
        "warm_prepared_cache_misses": warm_counter.prepared_cache_misses,
        "identical": identical,
        "meets_2x": bool(speedup and speedup >= 2.0),
        "plan": plan_fields(warm_plan),
    }
    marker = "" if identical else "  <-- MISMATCH"
    print(
        f"repeated-queries: cold {cold_s:8.4f}s  warm {warm_s:8.4f}s  "
        f"speedup {report['speedup']:>6}x  "
        f"prepared hits {warm_counter.prepared_cache_hits}{marker}"
    )
    if explain_analyze:
        # The pinned session plan carries no cost-model estimates by
        # contract; one extra adaptive execution on the warm dataset
        # shows the planner's estimate-vs-actual rows for the workload.
        adaptive = SkylineEngine().execute(dataset)
        print(adaptive.plan.analyze(adaptive).render())
    return report, identical and report["meets_2x"]


# -- scenario: incremental delta repair vs full recompute --------------------


def run_incremental_repair(kind, n, d, seed, explain_analyze=False):
    """Delta repair of a 1% mutation batch vs invalidate-and-recompute.

    Two engines are warmed with one full execution plus one throwaway
    mutation cycle each (untimed), so both hold a noted skyline, warm
    prepared caches, and — on the incremental side — a bootstrapped replay
    stream: the steady mutating state the scenario claims to measure.  The
    same seeded mutation batch — half deletes of random current rows, half fresh
    inserts, ``INCREMENTAL_MUTATION_FRACTION`` of ``n`` in total — is then
    applied to both:

    - **incremental**: ``apply_delta`` (repair mode: caches suffix-repaired,
      delta logged) followed by an adaptive execution, which must plan the
      ``incremental-repair`` variant and replay the delta log;
    - **full**: ``apply_delta(mode="recompute")`` (full invalidation)
      followed by the pinned flat-index ``sdi-subset`` execution.

    Bit-identical skyline ids are enforced on every configuration and
    decide the exit code.  The >= ``INCREMENTAL_GATE_SPEEDUP`` x wall gate
    records its honest true/false only on the canonical configuration
    (``INCREMENTAL_CANONICAL_CONFIG``); elsewhere ``gate_pass`` is ``None``
    with an explicit ``skip_reason`` — timing a toy ``--quick`` run would
    not measure the claim the gate makes.
    """
    dataset = generate(kind, n=n, d=d, seed=seed)
    rng = np.random.default_rng(seed + 1)
    batch = max(2, int(round(n * INCREMENTAL_MUTATION_FRACTION)))
    deletes = np.sort(rng.choice(n, size=batch // 2, replace=False))
    inserts = rng.random((batch - batch // 2, d))

    inc_engine = SkylineEngine()
    full_engine = SkylineEngine()
    inc_engine.execute(dataset, index_backend="flat", workers=1)
    full_engine.execute(dataset, "sdi-subset", index_backend="flat")

    # Warm mutation cycle (untimed): the scenario's claim is about
    # steady-state repair, so the one-time bootstrap of the replay stream
    # (anchor masks + witness discovery over the whole buffer) happens
    # here.  Both sides apply the same batch, so the datasets stay
    # bit-identical; the engine registry re-keys on mutation, so the
    # original handle keeps addressing the mutated dataset.
    warm_deletes = np.sort(rng.choice(n, size=batch // 2, replace=False))
    warm_inserts = rng.random((batch - batch // 2, d))
    inc_engine.apply_delta(dataset, inserts=warm_inserts, deletes=warm_deletes)
    inc_engine.execute(dataset, workers=1)
    full_engine.apply_delta(
        dataset, inserts=warm_inserts, deletes=warm_deletes, mode="recompute"
    )
    full_engine.execute(dataset, "sdi-subset", index_backend="flat")

    inc_counter = DominanceCounter()
    start = time.perf_counter()
    inc_report = inc_engine.apply_delta(
        dataset, inserts=inserts, deletes=deletes, counter=inc_counter
    )
    inc_result = inc_engine.execute(
        dataset, counter=inc_counter, workers=1
    )
    inc_s = time.perf_counter() - start

    full_counter = DominanceCounter()
    start = time.perf_counter()
    full_engine.apply_delta(
        dataset,
        inserts=inserts,
        deletes=deletes,
        counter=full_counter,
        mode="recompute",
    )
    full_result = full_engine.execute(
        dataset, "sdi-subset", counter=full_counter, index_backend="flat"
    )
    full_s = time.perf_counter() - start

    plan = inc_result.plan
    identical = sorted(inc_result.indices.tolist()) == sorted(
        full_result.indices.tolist()
    )
    planned_incremental = bool(plan.incremental)
    speedup = full_s / inc_s if inc_s else None
    canonical = (kind, n, d, seed) == INCREMENTAL_CANONICAL_CONFIG
    report = {
        "config": {
            "kind": kind,
            "n": n,
            "d": d,
            "seed": seed,
            "mutation_fraction": INCREMENTAL_MUTATION_FRACTION,
            "inserted": int(inserts.shape[0]),
            "deleted": int(deletes.size),
        },
        "delta_mode": inc_report.mode,
        "plan": plan_fields(plan),
        "planned_incremental": planned_incremental,
        "pending_mutations": plan.pending_mutations,
        "repair_cost_est": plan.repair_cost,
        "recompute_cost_est": plan.recompute_cost,
        "incremental_s": round(inc_s, 6),
        "full_recompute_s": round(full_s, 6),
        "speedup": round(speedup, 3) if speedup else None,
        "skyline_size": int(full_result.indices.size),
        "incremental_dominance_tests": inc_counter.tests,
        "full_dominance_tests": full_counter.tests,
        "identical": identical,
        "gate_speedup": INCREMENTAL_GATE_SPEEDUP,
    }
    if canonical:
        report["gate_pass"] = bool(
            identical
            and planned_incremental
            and speedup
            and speedup >= INCREMENTAL_GATE_SPEEDUP
        )
        report["skip_reason"] = None
    else:
        report["gate_pass"] = None
        report["skip_reason"] = (
            f"non-canonical configuration ({kind}, n={n}, d={d}, "
            f"seed={seed}): wall gate measured only on "
            f"{INCREMENTAL_CANONICAL_CONFIG}; identical-skyline and "
            "planned-incremental checks still enforced"
        )
    marker = "" if identical else "  <-- MISMATCH"
    print(
        f"incremental-repair: repair {inc_s:8.4f}s  "
        f"recompute {full_s:8.4f}s  speedup {report['speedup']:>6}x  "
        f"batch {batch} ({INCREMENTAL_MUTATION_FRACTION:.0%}){marker}"
    )
    print(
        f"  plan: incremental={planned_incremental}  "
        f"est repair {plan.repair_cost:g} vs recompute "
        f"{plan.recompute_cost:g} tests  "
        f"DT repair {inc_counter.tests} vs full {full_counter.tests}"
    )
    if report["gate_pass"] is not None:
        print(
            f"  wall gate: speedup {report['speedup']}x "
            f"(need >= {INCREMENTAL_GATE_SPEEDUP}x): "
            + ("PASS" if report["gate_pass"] else "FAIL")
        )
    if explain_analyze:
        print(inc_result.plan.analyze(inc_result).render())
    # Deterministic checks decide the exit code; at the canonical
    # configuration the wall gate is part of the contract too.
    gate_ok = identical and planned_incremental
    if canonical:
        gate_ok = bool(report["gate_pass"])
    return report, gate_ok


def phase_breakdown(kind, n, d, seed, algorithm="sdi-subset"):
    """Per-phase wall/CPU/DT profile of one traced engine run.

    One extra execution with a live :class:`~repro.obs.Tracer` — the timed
    scenarios above stay untraced, so their numbers are unaffected.
    """
    dataset = generate(kind, n=n, d=d, seed=seed)
    engine = SkylineEngine(ExecutionContext(tracer=Tracer()))
    result = engine.execute(dataset, algorithm)
    phases = {}
    for phase in aggregate_phases(result.trace):
        phases[".".join(phase.path)] = {
            "calls": phase.calls,
            "wall_s": round(phase.wall_s, 6),
            "cpu_s": round(phase.cpu_s, 6),
            "dominance_tests": phase.dominance_tests,
        }
    return {
        "algorithm": algorithm,
        "plan": plan_fields(result.plan),
        "phases": phases,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kind", default="UI", choices=("UI", "CO", "AC"))
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--d", type=int, default=8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--queries",
        type=int,
        default=50,
        help="queries in the repeated-subspace engine scenario",
    )
    parser.add_argument(
        "--parallel-n",
        type=int,
        default=400_000,
        help="cardinality of the block-parallel scenario",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker count of the block-parallel scenario",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke configuration (n=4000, d=6, 2 repeats, 2 workers)",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=SCENARIOS,
        help="run only the named scenario (repeatable); default: all",
    )
    parser.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print gate status for every recorded scenario and exit",
    )
    parser.add_argument(
        "--explain-analyze",
        action="store_true",
        help="print EXPLAIN ANALYZE (estimates vs actuals) for the "
        "repeated_queries and incremental_repair scenarios",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_throughput.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    if args.list_scenarios:
        list_scenarios(load_report(args.out))
        return 0
    if args.quick:
        args.n, args.d, args.repeats = 4000, 6, 2
        args.parallel_n, args.workers = 20_000, 2
    selected = tuple(dict.fromkeys(args.only)) if args.only else SCENARIOS

    report = load_report(args.out)
    failures = []
    prepared_pair = None

    if "batched_vs_scalar" in selected:
        prepared_pair, batched, ok = run_batched_vs_scalar(
            args.kind, args.n, args.d, args.seed, args.repeats
        )
        upsert(
            report,
            scenario_key(
                "batched_vs_scalar", args.kind, args.n, args.d, args.seed
            ),
            batched,
        )
        if not ok:
            failures.append("batched path diverged from the scalar reference")

    if "flat_vs_map" in selected:
        if prepared_pair is None:
            # batched_vs_scalar was deselected: build the shared dataset +
            # Merge result directly (one untimed Merge pass).
            dataset = generate(args.kind, n=args.n, d=args.d, seed=args.seed)
            merged = merge(
                dataset, default_threshold(args.d), DominanceCounter()
            )
            prepared_pair = (dataset, merged)
        flat, flat_ok = run_flat_vs_map(
            prepared_pair, args.kind, args.n, args.d, args.seed, args.repeats
        )
        upsert(
            report,
            scenario_key("flat_vs_map", args.kind, args.n, args.d, args.seed),
            flat,
        )
        if not flat_ok:
            failures.append(
                "flat backend diverged from the map index or missed the "
                f"{FLAT_GATE_SPEEDUP}x gate"
            )

    if "block_parallel" in selected:
        parallel, parallel_ok = run_block_parallel(
            args.kind, args.parallel_n, args.d, args.seed, args.workers
        )
        upsert(
            report,
            scenario_key(
                "block_parallel", args.kind, args.parallel_n, args.d, args.seed
            ),
            parallel,
        )
        if not parallel_ok:
            failures.append(
                "block-parallel diverged from serial or exceeded the "
                f"{PARALLEL_DT_RATIO}x dominance-test budget"
            )
        elif parallel.get("gate_pass") is False:
            print(
                "WARNING: block-parallel wall-clock speedup below "
                f"{PARALLEL_GATE_SPEEDUP}x (recorded, non-fatal)"
            )

    if "repeated_queries" in selected:
        repeated, repeated_ok = run_repeated_queries(
            args.kind,
            args.n,
            args.d,
            args.seed,
            queries=args.queries,
            explain_analyze=args.explain_analyze,
        )
        upsert(
            report,
            scenario_key(
                "repeated_queries", args.kind, args.n, args.d, args.seed
            ),
            repeated,
        )
        if not repeated_ok:
            failures.append(
                "warm engine session diverged from cold or fell short of "
                "the 2x prepared-cache speedup"
            )

    if "incremental_repair" in selected:
        incremental, incremental_ok = run_incremental_repair(
            args.kind,
            args.n,
            args.d,
            args.seed,
            explain_analyze=args.explain_analyze,
        )
        upsert(
            report,
            scenario_key(
                "incremental_repair", args.kind, args.n, args.d, args.seed
            ),
            incremental,
        )
        if not incremental_ok:
            failures.append(
                "incremental repair diverged from full recompute, failed to "
                f"plan the repair, or missed the {INCREMENTAL_GATE_SPEEDUP}x "
                "gate"
            )

    if "phases" in selected:
        upsert(
            report,
            scenario_key("phases", args.kind, args.n, args.d, args.seed),
            phase_breakdown(args.kind, args.n, args.d, args.seed),
        )

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    for failure in failures:
        print(f"ERROR: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
