"""Shared helpers for the pytest-benchmark suite.

Every benchmark measures the wall-clock of one algorithm on one workload
(the paper's RT metric) and records the exact dominance-test count and
skyline size in ``extra_info`` (the paper's DT metric).  Workload sizes are
scaled way down from the paper's grids so the whole suite runs in minutes;
set ``REPRO_BENCH_N`` to raise the base cardinality, or use
``python -m repro.bench <table> --full`` for the paper's actual grid.
"""

from __future__ import annotations

import os

from repro.algorithms.registry import get_algorithm
from repro.data import generate
from repro.dataset import Dataset
from repro.stats.counters import DominanceCounter

#: Base cardinality standing in for the paper's 200K (dim sweeps).
BASE_N = int(os.environ.get("REPRO_BENCH_N", "1000"))

#: The paper's table line-up.
ALGORITHMS = (
    "sfs",
    "sfs-subset",
    "salsa",
    "salsa-subset",
    "sdi",
    "sdi-subset",
    "bskytree-s",
    "bskytree-p",
)

_cache: dict[tuple, Dataset] = {}


def workload(kind: str, n: int, d: int, seed: int = 0) -> Dataset:
    """Memoised synthetic dataset (generation stays out of the timings)."""
    key = (kind, n, d, seed)
    if key not in _cache:
        _cache[key] = generate(kind, n, d, seed=seed)
    return _cache[key]


def run_skyline_benchmark(benchmark, dataset: Dataset, algorithm: str, sigma=None, **kwargs):
    """Benchmark one algorithm; stash DT / skyline size in extra_info."""
    instance = get_algorithm(algorithm, sigma=sigma, **kwargs)
    state: dict[str, float] = {}

    def run():
        counter = DominanceCounter()
        result = instance.compute(dataset, counter=counter)
        state["dt"] = counter.tests / dataset.cardinality
        state["skyline"] = result.size
        return result

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["mean_dominance_tests"] = round(state["dt"], 4)
    benchmark.extra_info["skyline_size"] = state["skyline"]
    benchmark.extra_info["cardinality"] = dataset.cardinality
    benchmark.extra_info["dimensionality"] = dataset.dimensionality
    return result
