"""Benchmarks for the extension operators (beyond the paper's tables).

Covers the Section 7 perspectives and the adjacent operators shipped with
the library: streaming maintenance throughput, k-skyband, top-k dominating
and the parallel two-phase skyline.
"""

import numpy as np
import pytest

from common import BASE_N, workload
from repro.extensions.parallel import parallel_skyline
from repro.extensions.skyband import skyband
from repro.extensions.streaming import StreamingSkyline
from repro.extensions.topk import top_k_dominating


@pytest.mark.parametrize("k", [1, 2, 4])
def test_skyband(benchmark, k):
    dataset = workload("UI", BASE_N, 6)
    result = benchmark.pedantic(
        lambda: skyband(dataset, k=k), rounds=3, iterations=1
    )
    benchmark.extra_info["band_size"] = len(result)


@pytest.mark.parametrize("k", [5, 25])
def test_top_k_dominating(benchmark, k):
    dataset = workload("UI", BASE_N, 4)
    result = benchmark.pedantic(
        lambda: top_k_dominating(dataset, k=k), rounds=3, iterations=1
    )
    benchmark.extra_info["top_score"] = result[0][1]


@pytest.mark.parametrize("kind", ["CO", "UI"])
def test_streaming_insert_throughput(benchmark, kind):
    dataset = workload(kind, BASE_N, 4)
    values = dataset.values

    def run():
        sky = StreamingSkyline(d=4, anchors=6)
        for row in values:
            sky.insert(row)
        return len(sky.skyline_ids())

    size = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["skyline_size"] = size


def test_streaming_sliding_window(benchmark):
    dataset = workload("UI", BASE_N, 4)
    values = dataset.values
    window = BASE_N // 4

    def run():
        sky = StreamingSkyline(d=4, anchors=6)
        live: list[int] = []
        for row in values:
            if len(live) == window:
                sky.delete(live.pop(0))
            live.append(sky.insert(row))
        return len(sky.skyline_ids())

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_partial_order_skyline(benchmark):
    from repro.extensions.partialorder import PartialOrder, partial_order_skyline

    rng = np.random.default_rng(0)
    sizes = PartialOrder([("S", "M"), ("M", "L"), ("M", "XL")])
    labels = ["S", "M", "L", "XL"]
    rows = [
        (float(rng.random()), float(rng.random()), labels[rng.integers(0, 4)])
        for _ in range(BASE_N // 2)
    ]
    result = benchmark.pedantic(
        lambda: partial_order_skyline(rows, {2: sizes}), rounds=3, iterations=1
    )
    benchmark.extra_info["skyline_size"] = len(result)


@pytest.mark.parametrize("memory_pages", [2, 8, 64])
def test_external_bnl_io(benchmark, memory_pages):
    from repro.algorithms.external import ExternalBNL
    from repro.stats.counters import DominanceCounter

    dataset = workload("UI", BASE_N, 4)
    algo = ExternalBNL(page_size=64, memory_pages=memory_pages)
    state = {}

    def run():
        counter = DominanceCounter()
        result = algo.compute(dataset, counter=counter)
        state["reads"] = counter.extras["page_reads"]
        state["writes"] = counter.extras["page_writes"]
        return result

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["page_reads"] = state["reads"]
    benchmark.extra_info["page_writes"] = state["writes"]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_skyline(benchmark, workers):
    dataset = workload("UI", 4 * BASE_N, 6)
    result = benchmark.pedantic(
        lambda: parallel_skyline(dataset, workers=workers),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["skyline_size"] = int(np.asarray(result).shape[0])
