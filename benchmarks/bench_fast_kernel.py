"""Benchmark the accounting-free fast kernel against the counting paths.

Positions `repro.fast_skyline` (docs in `repro/fast.py`): it wins big over
per-point counting scans when skylines are small relative to N (real-world
correlated data) and cedes to the subset-boosted algorithms on huge-skyline
regimes.
"""

import pytest

from common import BASE_N, run_skyline_benchmark, workload
from repro.data import house
from repro.fast import fast_skyline


@pytest.mark.parametrize("kind", ["CO", "UI"])
def test_fast_kernel_synthetic(benchmark, kind):
    dataset = workload(kind, 4 * BASE_N, 8)
    result = benchmark.pedantic(
        lambda: fast_skyline(dataset), rounds=3, iterations=1
    )
    benchmark.extra_info["skyline_size"] = int(result.shape[0])


def test_fast_kernel_house(benchmark):
    dataset = house(4 * BASE_N, seed=0)
    result = benchmark.pedantic(
        lambda: fast_skyline(dataset), rounds=3, iterations=1
    )
    benchmark.extra_info["skyline_size"] = int(result.shape[0])


@pytest.mark.parametrize("algorithm", ["sfs", "sdi-subset"])
def test_counting_reference_house(benchmark, algorithm):
    run_skyline_benchmark(benchmark, house(4 * BASE_N, seed=0), algorithm)
