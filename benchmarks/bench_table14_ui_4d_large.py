"""Table 14 — the 4-D UI crossover at large cardinality.

The paper shows that at 1M 4-D UI points every boosted method beats both
BSkyTree variants; this scaled version uses 5x the base cardinality so the
low-dimensional crossover is visible in the timings.
"""

import pytest

from common import ALGORITHMS, BASE_N, run_skyline_benchmark, workload


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table14_ui_4d(benchmark, algorithm):
    run_skyline_benchmark(benchmark, workload("UI", 5 * BASE_N, 4), algorithm)
