"""Tables 2 & 3 — DT and RT on AC data vs dimensionality.

Each benchmark is one (algorithm, d) cell of the paper's AC dimensionality
sweep at scaled cardinality; RT is the benchmark timing, DT lands in
``extra_info``.
"""

import pytest

from common import ALGORITHMS, BASE_N, run_skyline_benchmark, workload


@pytest.mark.parametrize("d", [4, 8])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table2_3_ac(benchmark, algorithm, d):
    run_skyline_benchmark(benchmark, workload("AC", BASE_N, d), algorithm)
