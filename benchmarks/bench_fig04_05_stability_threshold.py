"""Figures 4 & 5 — DT and RT of boosted algorithms vs stability threshold σ."""

import pytest

from common import BASE_N, run_skyline_benchmark, workload


@pytest.mark.parametrize("sigma", [2, 3, 5, 8])
@pytest.mark.parametrize("host", ["sfs-subset", "salsa-subset", "sdi-subset"])
@pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
def test_fig4_5_sigma_sweep(benchmark, kind, host, sigma):
    run_skyline_benchmark(benchmark, workload(kind, BASE_N, 8), host, sigma=sigma)
