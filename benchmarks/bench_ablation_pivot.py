"""Ablation — Merge pivot scoring: Euclidean (the paper) vs sum vs maxmin."""

import pytest

from common import BASE_N, workload
from repro.algorithms.sdi import SDI
from repro.core.boost import SubsetBoost
from repro.core.merge import PIVOT_STRATEGIES
from repro.stats.counters import DominanceCounter


@pytest.mark.parametrize("strategy", PIVOT_STRATEGIES)
@pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
def test_ablation_pivot_strategy(benchmark, kind, strategy):
    dataset = workload(kind, BASE_N, 8)
    algo = SubsetBoost(SDI(), pivot_strategy=strategy)
    state = {}

    def run():
        counter = DominanceCounter()
        result = algo.compute(dataset, counter=counter)
        state["dt"] = counter.tests / dataset.cardinality
        return result

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["mean_dominance_tests"] = round(state["dt"], 4)
