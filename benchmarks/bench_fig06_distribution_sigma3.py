"""Figure 6 — point distribution vs subspace size after Merge with σ = 3.

Compared with Figure 2's single-pivot histogram: merging distributes AC
points into high subspace sizes while CO/UI stay low — the behaviour the
paper uses to explain the per-regime results.
"""

import numpy as np
import pytest

from common import BASE_N, workload
from repro.core.merge import merge


@pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
def test_fig6_sigma3_distribution(benchmark, kind):
    dataset = workload(kind, BASE_N, 8)
    state = {}

    def run():
        merged = merge(dataset, sigma=3)
        hist = np.bincount(np.bitwise_count(merged.masks), minlength=9)[1:9]
        state["histogram"] = hist
        state["pivots"] = len(merged.pivot_ids)
        return hist

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["histogram"] = [int(v) for v in state["histogram"]]
    benchmark.extra_info["pivots"] = state["pivots"]
