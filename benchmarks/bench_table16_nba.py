"""Table 16 — the NBA dataset (8-D correlated, small, σ = 2)."""

import pytest

from common import ALGORITHMS, BASE_N, run_skyline_benchmark
from repro.data import nba

_DATASET = nba(2 * BASE_N, seed=0)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table16_nba(benchmark, algorithm):
    sigma = 2 if algorithm.endswith("-subset") else None
    run_skyline_benchmark(benchmark, _DATASET, algorithm, sigma=sigma)
