"""Figure 2 — point distribution vs subspace size for a single pivot.

Benchmarks the single-pivot dominating-subspace pass and records the
per-size histogram; the shape (mass in small sizes, far from 2^d) is the
paper's motivation for merging multiple pivots.
"""

import numpy as np
import pytest

from common import BASE_N, workload
from repro.dominance import dominating_subspaces


@pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
def test_fig2_single_pivot_distribution(benchmark, kind):
    dataset = workload(kind, BASE_N, 8)
    values = dataset.values
    state = {}

    def run():
        shifted = values - values.min(axis=0)
        pivot = int(np.argmin(np.einsum("ij,ij->i", shifted, shifted)))
        rest = np.delete(np.arange(values.shape[0]), pivot)
        masks = dominating_subspaces(values[rest], values[pivot])
        masks = masks[masks != 0]
        state["histogram"] = np.bincount(np.bitwise_count(masks), minlength=9)[1:9]
        return state["histogram"]

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["histogram"] = [int(v) for v in state["histogram"]]
