"""Ablation — SFS sort functions (the §2 'heuristic that heavily affects DT')."""

import pytest

from common import BASE_N, run_skyline_benchmark, workload


@pytest.mark.parametrize("function", ["entropy", "sum", "euclidean", "minc"])
@pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
def test_ablation_sfs_sort_function(benchmark, kind, function):
    run_skyline_benchmark(
        benchmark, workload(kind, BASE_N, 8), "sfs", sort_function=function
    )
