"""Table 15 — the HOUSE dataset (6-D anti-correlated, σ = 4)."""

import pytest

from common import ALGORITHMS, BASE_N, run_skyline_benchmark
from repro.data import house

_DATASET = house(2 * BASE_N, seed=0)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table15_house(benchmark, algorithm):
    sigma = 4 if algorithm.endswith("-subset") else None
    run_skyline_benchmark(benchmark, _DATASET, algorithm, sigma=sigma)
