"""Tables 8 & 9 — DT and RT on CO data vs cardinality (8-D)."""

import pytest

from common import ALGORITHMS, BASE_N, run_skyline_benchmark, workload


@pytest.mark.parametrize("n", [BASE_N, 2 * BASE_N])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table8_9_co(benchmark, algorithm, n):
    run_skyline_benchmark(benchmark, workload("CO", n, 8), algorithm)
