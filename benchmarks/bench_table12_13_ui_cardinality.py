"""Tables 12 & 13 — DT and RT on UI data vs cardinality (8-D)."""

import pytest

from common import ALGORITHMS, BASE_N, run_skyline_benchmark, workload


@pytest.mark.parametrize("n", [BASE_N, 2 * BASE_N])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table12_13_ui(benchmark, algorithm, n):
    run_skyline_benchmark(benchmark, workload("UI", n, 8), algorithm)
