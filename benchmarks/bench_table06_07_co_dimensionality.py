"""Tables 6 & 7 — DT and RT on CO data vs dimensionality."""

import pytest

from common import ALGORITHMS, BASE_N, run_skyline_benchmark, workload


@pytest.mark.parametrize("d", [4, 8])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table6_7_co(benchmark, algorithm, d):
    run_skyline_benchmark(benchmark, workload("CO", BASE_N, d), algorithm)
