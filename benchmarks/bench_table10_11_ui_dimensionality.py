"""Tables 10 & 11 — DT and RT on UI data vs dimensionality.

The paper's headline result lives here: from 8-D upward, SDI-Subset beats
BSkyTree-P on uniform independent data.  Compare the ``sdi-subset`` and
``bskytree-p`` rows.
"""

import pytest

from common import ALGORITHMS, BASE_N, run_skyline_benchmark, workload


@pytest.mark.parametrize("d", [4, 8])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table10_11_ui(benchmark, algorithm, d):
    run_skyline_benchmark(benchmark, workload("UI", BASE_N, d), algorithm)
