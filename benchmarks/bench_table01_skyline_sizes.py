"""Table 1 — skyline sizes of the synthetic datasets.

Benchmarks the SDI skyline computation per regime and records the skyline
size; the recorded ``skyline_size`` series reproduces Table 1's shape
(AC >> UI >> CO, growth with d and N).
"""

import pytest

from common import BASE_N, run_skyline_benchmark, workload


@pytest.mark.parametrize("d", [2, 4, 8, 12])
@pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
def test_table1_dimensionality(benchmark, kind, d):
    run_skyline_benchmark(benchmark, workload(kind, BASE_N, d), "sdi")


@pytest.mark.parametrize("n", [BASE_N, 2 * BASE_N])
@pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
def test_table1_cardinality(benchmark, kind, n):
    run_skyline_benchmark(benchmark, workload(kind, n, 8), "sdi")
