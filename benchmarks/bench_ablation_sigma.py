"""Ablation — the σ = round(d/3) heuristic vs the autotuned threshold.

Section 6.1 fixes σ = d/3 after a manual sweep; Section 7 asks for a cost
model.  This bench times SDI-Subset under the heuristic, an autotuned σ,
and the worst fixed σ, so the heuristic's adequacy is visible.
"""

import pytest

from common import BASE_N, run_skyline_benchmark, workload
from repro.algorithms.sdi import SDI
from repro.core.autotune import tune_sigma


@pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
def test_ablation_heuristic_sigma(benchmark, kind):
    run_skyline_benchmark(benchmark, workload(kind, BASE_N, 8), "sdi-subset", sigma=3)


@pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
def test_ablation_autotuned_sigma(benchmark, kind):
    dataset = workload(kind, BASE_N, 8)
    choice = tune_sigma(dataset, SDI(), sample_size=min(BASE_N, 500), seed=0)
    run_skyline_benchmark(benchmark, dataset, "sdi-subset", sigma=choice.sigma)
    benchmark.extra_info["tuned_sigma"] = choice.sigma


@pytest.mark.parametrize("kind", ["AC", "CO", "UI"])
def test_ablation_max_sigma(benchmark, kind):
    run_skyline_benchmark(benchmark, workload(kind, BASE_N, 8), "sdi-subset", sigma=8)
