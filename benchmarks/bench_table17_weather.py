"""Table 17 — the WEATHER dataset (15-D, duplicate-heavy, σ = 3)."""

import pytest

from common import ALGORITHMS, BASE_N, run_skyline_benchmark
from repro.data import weather

_DATASET = weather(2 * BASE_N, seed=0)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table17_weather(benchmark, algorithm):
    sigma = 3 if algorithm.endswith("-subset") else None
    run_skyline_benchmark(benchmark, _DATASET, algorithm, sigma=sigma)
