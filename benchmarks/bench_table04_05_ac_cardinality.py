"""Tables 4 & 5 — DT and RT on AC data vs cardinality (8-D)."""

import pytest

from common import ALGORITHMS, BASE_N, run_skyline_benchmark, workload


@pytest.mark.parametrize("n", [BASE_N, 2 * BASE_N])
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_table4_5_ac(benchmark, algorithm, n):
    run_skyline_benchmark(benchmark, workload("AC", n, 8), algorithm)
