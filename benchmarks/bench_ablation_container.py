"""Ablation — subset index vs plain list container with identical merging.

Isolates the contribution of the subset-query index (Algorithms 2-4) from
that of the Merge pruning (Algorithm 1): both variants run the exact same
merge phase; only the skyline store differs.
"""

import pytest

from common import BASE_N, workload
from repro.algorithms.salsa import SaLSa
from repro.algorithms.sdi import SDI
from repro.algorithms.sfs import SFS
from repro.core.boost import SubsetBoost
from repro.stats.counters import DominanceCounter

_HOSTS = {"sfs": SFS, "salsa": SaLSa, "sdi": SDI}


@pytest.mark.parametrize("container", ["list", "subset"])
@pytest.mark.parametrize("host", sorted(_HOSTS))
@pytest.mark.parametrize("kind", ["AC", "UI"])
def test_ablation_container(benchmark, kind, host, container):
    dataset = workload(kind, BASE_N, 8)
    algo = SubsetBoost(_HOSTS[host](), container=container)
    state = {}

    def run():
        counter = DominanceCounter()
        result = algo.compute(dataset, counter=counter)
        state["dt"] = counter.tests / dataset.cardinality
        return result

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info["mean_dominance_tests"] = round(state["dt"], 4)
