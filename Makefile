PYTHON ?= python

.PHONY: install test test-fast bench experiments report examples lint-docs clean

install:
	$(PYTHON) -m pip install -e ".[test]"

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro.bench all

report:
	$(PYTHON) -m repro.bench report

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	find . -type d -name __pycache__ -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build dist *.egg-info
