PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install install-dev test test-fast bench bench-incremental \
        bench-check experiments report examples lint typecheck analyze \
        analyze-baseline clean

install:
	$(PYTHON) -m pip install -e ".[test]"

install-dev:
	$(PYTHON) -m pip install -e ".[dev]"

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow"

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Canonical delta-repair gate: 1% mutation batch through apply_delta +
# incremental plan vs invalidate-and-recompute, bit-identical skylines
# and the >= 5x wall speedup enforced (non-zero exit on failure).
bench-incremental:
	$(PYTHON) benchmarks/bench_throughput.py --only incremental_repair --out BENCH_throughput.json

# Bench-trajectory regression gate: rerun the two engine scenarios into a
# throwaway report and compare against the committed history with the
# noise-tolerant checker (sustained wall slowdowns and DT growth fail).
bench-check:
	$(PYTHON) benchmarks/bench_throughput.py --only repeated_queries --only incremental_repair --out .bench-fresh.json
	$(PYTHON) -m repro.obs.regress --history BENCH_throughput.json --fresh .bench-fresh.json

experiments:
	$(PYTHON) -m repro.bench all

report:
	$(PYTHON) -m repro.bench report

examples:
	@for script in examples/*.py; do \
		echo "== $$script =="; \
		$(PYTHON) $$script || exit 1; \
	done

# Repo-specific invariant lint (RPR rules), then ruff when available.
# One shell with set -e so an repro.analysis failure always fails the
# target — the optional ruff leg must never mask it.
lint:
	@set -e; \
	$(PYTHON) -m repro.analysis src/repro; \
	if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests examples; \
	else \
		echo "ruff not installed — skipping style lint (make install-dev)"; \
	fi

typecheck:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro/core src/repro/stats src/repro/analysis src/repro/engine src/repro/obs; \
	else \
		echo "mypy not installed — skipping typecheck (make install-dev)"; \
	fi

# The full correctness gate: lint rules + runtime contracts + differential.
analyze:
	$(PYTHON) -m repro.analysis --strict src/repro

# Regenerate analysis-baseline.json deliberately (never implicitly).
# Review the diff and replace every FIXME reason before committing —
# unjustified entries do not suppress anything.
analyze-baseline:
	$(PYTHON) -m repro.analysis --write-baseline src/repro

clean:
	find . -type d -name __pycache__ -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis build dist *.egg-info
	rm -f .bench-fresh.json
